"""The discrete-event kernel shared by every serving simulation.

One :class:`Engine` runs under both :func:`repro.serve.simulate` and
:func:`repro.control.simulate_controlled`: requests arrive in time
order, a scheduling policy places each one on an instance, per-instance
batching queues launch when full or timed out, and an optional periodic
tick drives a control loop.  The simulators differ only in the
:class:`EngineHooks` they plug in:

* ``on_arrival`` — admission control: shed or preempt at the chosen
  instance (the control plane's shedding policies).
* ``on_tick`` — a governor evaluated at a fixed interval (autoscaling,
  DVFS re-pointing).  Only scheduled when ``tick_s`` is set.
* ``on_complete`` — per-instance accounting after its queue was
  re-examined (the control plane closes drained power intervals).

Routing is a policy, not a hook: policies receive the *active* slice of
the fleet as a plain indexed sequence and return a position in it, so
the same policy objects serve both planes without adapter shims.

Four execution paths share one physics
--------------------------------------

Requests live in a columnar :class:`~repro.serve.arena.RequestArena`
(see that module) and the engine picks the fastest path that preserves
the event loop's observable behaviour *bit-for-bit*:

1. **General path** — the ``(time, seq)`` event loop below, processing
   one arrival/completion/wake/tick at a time.  Runs whenever hooks,
   ticks, priority queues, or a stateful fleet are in play; iterates
   arena views, so hook clients still see ``Request`` objects.
2. **Round-robin fast path** — round-robin striping makes each
   instance's request stream a predetermined slice ``arena[j::K]``, so
   the per-instance timeline is computed with vectorized batch
   partitioning plus a lean Python fold over *batches* (not events),
   with an exact scalar repair pass for batches that launch before
   they fill.  ~10-30x the PR-4 events/sec.
3. **Least-loaded fast path** — routing feedback prevents
   vectorization, but the event loop is specialized to plain Python
   lists and a single event slot per instance (no heap, no objects).
4. **Controlled round-robin fast path** (``"rr-ctl"``) — the control
   plane's common configuration (shedding, priority queues, DVFS
   scales, energy accounting — but *no* governor ticks) over
   round-robin routing.  Striping again decouples the instances, so
   admission (deadline-feasibility or queue-depth shedding) fuses
   straight into a per-instance scalar fold; the hook set opts in
   through :meth:`EngineHooks.fast_admission` rather than the engine
   importing the control plane.

The fast paths are *exact*: they reproduce the general loop's floats
bit-for-bit (same operations in the same order), which
``tests/serve/test_engine_parity.py`` and the benchmark's equality
assertions pin.  The vectorized round-robin path assumes no arrival
timestamp coincides bit-exactly with a batching-timeout instant
(``a_head + max_wait_s``) — guaranteed for continuous arrival
processes, and degenerate cases (``max_wait_s == 0`` with tied trace
timestamps, sub-nanosecond waits) fall back to the general path.  The
event-driven ``"ll"``/``"rr-ctl"`` folds have no such restriction.

Event ordering is bit-for-bit the legacy ``(time, seq)`` heap order:
at equal timestamps arrivals precede every scheduled event (their
sequence numbers were seeded first) and scheduled events pop in push
order.

Statistics modes
----------------

:func:`summarize_requests` aggregates a drained arena either exactly
(numpy reductions over the columns — identical floats to the
object-era loop) or as ``stats="sketch"``: t-digest percentiles from
:mod:`repro.serve.sketch` with exact mean/max/count.  For round-robin
scenarios :func:`run_streaming_round_robin` goes further and streams
arrival chunks through the fast-path kernel, keeping memory flat in
request count (the million-request mode).
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from itertools import islice
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Sequence

import numpy as np

from ..errors import ConfigError
from .arena import Request, RequestArena
from .arena import _class_pools  # noqa: F401  (re-export for clients)
from .fleet import Fleet, Instance
from .policies import (
    LeastLoadedPolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
)
from .profile import ScenarioMix
from .sketch import StreamingLatencyStats

__all__ = [
    "EngineHooks",
    "Engine",
    "EngineRun",
    "EngineState",
    "RequestSummary",
    "StreamingSummary",
    "build_requests",
    "summarize_requests",
    "run_streaming_round_robin",
    "realized_offered_qps",
]

_COMPLETE, _WAKE, _TICK = 1, 2, 3
_EPS = 1e-12
_INF = float("inf")

#: Arrival chunk size of the streaming round-robin runner: large
#: enough to amortize numpy call overhead, small enough that resident
#: memory stays a few MB regardless of total request count.
_STREAM_CHUNK = 65_536


class EngineHooks:
    """Pluggable decision points of the kernel (default: no-ops).

    Subclass and override what the scenario needs; the engine skips the
    dispatch for hooks left at their base implementation, so unused
    hooks cost nothing on the per-event path.  Hooks receive
    :class:`~repro.serve.arena.Request` *views*: mutating one (e.g.
    ``request.shed = True``) writes through to the arena column every
    other reader sees.
    """

    def on_arrival(
        self,
        request: Request,
        instance: Instance,
        now: float,
        engine: "Engine",
    ) -> bool:
        """Admission decision at the instance the policy chose.

        Return ``False`` to shed ``request`` (the engine marks it);
        preempting a queued victim is the hook's own business.
        """
        return True

    def on_arrival_batch(
        self,
        arena: "RequestArena",
        index: int,
        request: Request,
        instance: Instance,
        now: float,
        engine: "Engine",
    ) -> bool:
        """Columnar admission decision over an arena request stream.

        The engine probes this hook once at construction; when it is
        overridden and the request stream is a
        :class:`~repro.serve.arena.RequestArena`, the general loop
        calls it *instead of* :meth:`on_arrival`, passing the arena
        and the request's row ``index`` so the hook can amortize
        per-event Python overhead against cached column tables (one
        ``.tolist()`` per arena instead of per-request float boxing).
        Implementations must decide — and side-effect — exactly as
        their :meth:`on_arrival` would, bit-for-bit; list streams
        (tenancy's merged home+spill views) keep dispatching the
        scalar hook.  The base implementation just delegates.
        """
        return self.on_arrival(request, instance, now, engine)

    def fast_admission(self) -> tuple[str, int] | None:
        """Declare this hook set vectorizable for the ``"rr-ctl"`` path.

        Return ``None`` (the default) to keep the general loop, or a
        ``(shedding_kind, queue_threshold)`` pair with
        ``shedding_kind`` in ``{"none", "deadline", "queue-depth"}``
        to let :meth:`Engine._fast_mode` fuse admission into the
        columnar controlled round-robin fold.  A hook set may only opt
        in when, under a static always-active fleet, (a) its
        ``on_arrival`` is exactly the declared shedding rule against
        the chosen instance, (b) its ``on_complete`` is a no-op, and
        (c) it observes nothing else per event (``on_tick`` never runs
        because ``tick_s is None`` is a path precondition, and an
        overridden ``on_launch`` disqualifies the path regardless).
        """
        return None

    def on_tick(self, now: float, engine: "Engine") -> int:
        """Periodic control-loop evaluation; returns actions taken."""
        return 0

    def on_complete(
        self, instance: Instance, now: float, engine: "Engine"
    ) -> None:
        """Accounting after ``instance``'s queue was re-examined."""

    def on_launch(
        self,
        instance: Instance,
        requests: tuple,
        now: float,
        finish: float,
        engine: "Engine",
    ) -> None:
        """Observation point right after ``instance`` launched a batch.

        ``requests`` are the batch members (their ``start``/``finish``
        columns already written), ``finish`` the batch's completion
        time.  Purely observational: implementations must not mutate
        engine, fleet, or request state.
        """

    def state_dict(self) -> dict:
        """Serializable hook state for checkpointing.

        The base hooks are stateless; subclasses that accumulate
        per-run state (shedding counters, governor windows, forecaster
        levels) return it here as plain picklable values, mirrored by
        :meth:`load_state_dict`.
        """
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""


@dataclass(slots=True)
class EngineRun:
    """Outcome counters of one kernel run.

    Attributes:
        events: Events processed — the numerator of the events/sec
            kernel benchmark.  The general path counts arrivals +
            completions + wakes + ticks; the fast paths count the
            logically equivalent arrivals + batch launches (they
            process the same work without materializing wake events).
        tick_actions: Sum of the ``on_tick`` hook's action counts.
        peak_heap: Largest pending-event heap observed at an event
            boundary (general loop only; the fast paths never build a
            heap and report 0).
        dispatch: Which execution path served the run — ``"general"``,
            ``"rr"``, ``"ll"``, ``"rr-ctl"``, or ``"streaming"``.
        fallback: When ``dispatch == "general"``, the *first failing*
            fast-path precondition (empty when a fast path ran, or
            when nothing recorded a reason) — what makes a fallback
            to the general loop diagnosable from ``--json``.
    """

    events: int
    tick_actions: int
    peak_heap: int = 0
    dispatch: str = "general"
    fallback: str = ""


@dataclass(slots=True)
class EngineState:
    """Explicit execution state of one general-loop run.

    Everything :meth:`Engine.run_until` needs to continue a paused run
    lives here rather than in loop locals: the pending ``(time, seq,
    kind, payload)`` event heap, the next sequence number, the arena
    cursor (arrivals consumed so far), the cumulative event counters,
    and the static-fleet flag computed at :meth:`Engine.begin`.
    Per-instance queues and in-flight batches live on the
    :class:`~repro.serve.fleet.Instance` objects themselves and are
    captured alongside this state by :meth:`Engine.snapshot`.

    ``rng_states`` is a carry slot for the exact
    ``np.random.Generator`` bit-generator states of the run's arrival
    and sampling streams: the engine never draws randomness itself
    (streams are consumed while building the request arena), so the
    simulators deposit the post-build states here and
    :meth:`Engine.snapshot` persists them for exact resumption.
    """

    heap: list
    seq: int
    clock: float
    cursor: int
    events: int
    tick_actions: int
    peak_heap: int
    static_fleet: bool
    rng_states: dict


class Engine:
    """One discrete-event loop over a fleet.

    Args:
        fleet: The instances (mutated in place during the run).
        policy: Scheduling policy; sees the active instances as an
            indexed sequence and returns a position in it.
        max_batch: Largest same-model batch an instance launches.
        max_wait_s: Longest a queue head waits for its batch to fill.
        hooks: Decision points (admission, ticks, accounting).
        tick_s: ``on_tick`` interval; ``None`` schedules no ticks.
        priority_queues: Keep instance queues priority-ordered.
    """

    __slots__ = (
        "fleet",
        "policy",
        "max_batch",
        "max_wait_s",
        "hooks",
        "tick_s",
        "priority_queues",
        "_admit",
        "_admit_batch",
        "_on_complete",
        "_on_launch",
        "_on_tick_overridden",
        "_ctl_spec",
        "_fast_reason",
        "state",
        "last_run",
        "_requests",
    )

    def __init__(
        self,
        fleet: Fleet,
        policy: SchedulingPolicy,
        max_batch: int,
        max_wait_s: float,
        hooks: EngineHooks | None = None,
        tick_s: float | None = None,
        priority_queues: bool = False,
    ) -> None:
        if max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1 ({max_batch})")
        if max_wait_s < 0:
            raise ConfigError(
                f"max_wait_s must be >= 0 ({max_wait_s})"
            )
        if tick_s is not None and tick_s <= 0:
            raise ConfigError(f"tick_s must be positive ({tick_s})")
        self.fleet = fleet
        self.policy = policy
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.hooks = hooks if hooks is not None else EngineHooks()
        self.tick_s = tick_s
        self.priority_queues = priority_queues
        cls = type(self.hooks)
        # Bind overridden hooks only: the serve plane runs with all
        # of them at their base no-ops and pays zero dispatch for
        # them.  These bindings double as the hook-override probes,
        # computed once here instead of per _fast_mode call.
        self._admit = (
            self.hooks.on_arrival
            if cls.on_arrival is not EngineHooks.on_arrival
            else None
        )
        self._admit_batch = (
            self.hooks.on_arrival_batch
            if cls.on_arrival_batch is not EngineHooks.on_arrival_batch
            else None
        )
        self._on_complete = (
            self.hooks.on_complete
            if cls.on_complete is not EngineHooks.on_complete
            else None
        )
        self._on_launch = (
            self.hooks.on_launch
            if cls.on_launch is not EngineHooks.on_launch
            else None
        )
        self._on_tick_overridden = (
            cls.on_tick is not EngineHooks.on_tick
        )
        # A hook set that declares a vectorizable admission rule (see
        # EngineHooks.fast_admission) unlocks the rr-ctl path; unknown
        # kinds are ignored rather than trusted.
        spec = self.hooks.fast_admission()
        if spec is not None and spec[0] not in (
            "none",
            "deadline",
            "queue-depth",
        ):
            spec = None
        self._ctl_spec = spec
        self._fast_reason = ""
        self.state: EngineState | None = None
        self.last_run: EngineRun | None = None
        self._requests: Sequence[Request] | None = None

    # ------------------------------------------------------------------
    # Fast-path dispatch
    # ------------------------------------------------------------------

    def _fall_back(self, reason: str) -> None:
        """Record the first failing fast-path precondition; the
        general loop surfaces it as :attr:`EngineRun.fallback`."""
        self._fast_reason = reason
        return None

    def _fast_mode(self, arena: RequestArena) -> str | None:
        """Which columnar fast path (if any) reproduces this run
        bit-for-bit: ``"rr"``, ``"ll"``, ``"rr-ctl"``, or ``None``
        (general loop).

        ``"rr"``/``"ll"`` require the hook-free serve-plane
        configuration over a pristine fleet; ``"rr-ctl"`` relaxes
        that for hook sets whose :meth:`EngineHooks.fast_admission`
        declares a vectorizable shedding rule (the governor-less
        control plane): priority queues, DVFS latency scales, and
        busy-power accounting are folded into the kernel, but ticks,
        launch observers, per-instance profiles, and any pre-existing
        instance state still fall back to the general loop, which
        handles everything.

        As a side effect the *first failing precondition* is recorded
        and surfaced as :attr:`EngineRun.fallback`, so a fallback to
        the general loop is diagnosable from ``--json``.
        """
        self._fast_reason = ""
        if self.tick_s is not None:
            return self._fall_back("periodic tick scheduled (tick_s)")
        if self._on_launch is not None:
            return self._fall_back("on_launch hook overridden")
        ctl = self._ctl_spec
        if ctl is None:
            if self._admit is not None or self._admit_batch is not None:
                return self._fall_back("on_arrival hook overridden")
            if self._on_complete is not None:
                return self._fall_back("on_complete hook overridden")
            if self.priority_queues:
                return self._fall_back("priority queues enabled")
            if self._on_tick_overridden:
                return self._fall_back("on_tick hook overridden")
        for inst in self.fleet.instances:
            if not inst.active:
                return self._fall_back(
                    f"instance {inst.index} inactive"
                )
            if (
                inst.busy_until != 0.0
                or inst.queue
                or inst.loaded_model is not None
                or inst.queued_seconds != 0.0
            ):
                return self._fall_back(
                    f"instance {inst.index} carries pre-run state"
                )
            if inst.profiles is not None:
                return self._fall_back(
                    f"instance {inst.index} has per-instance profiles"
                )
            if ctl is None:
                if inst.latency_scale != 1.0:
                    return self._fall_back(
                        f"instance {inst.index} has a DVFS "
                        "latency scale"
                    )
                if inst.busy_power_w != 0.0:
                    return self._fall_back(
                        f"instance {inst.index} integrates busy power"
                    )
            elif (
                inst.busy_seconds != 0.0
                or inst.busy_seconds_window != 0.0
                or inst.energy_joules != 0.0
            ):
                return self._fall_back(
                    f"instance {inst.index} carries accumulated "
                    "counters"
                )
        policy = self.policy
        if type(policy) is RoundRobinPolicy and policy._next == 0:
            if ctl is not None:
                # The controlled fold is event-driven and scalar, so
                # (unlike the vectorized "rr" kernel) it is exact for
                # any max_wait, including zero-wait tied arrivals.
                return "rr-ctl"
            mw = self.max_wait_s
            if mw == 0.0:
                # Zero-wait batching launches at the arrival event
                # itself; that is only vectorizable when timestamps
                # are strictly increasing (no simultaneous arrivals).
                arr = arena.arrival
                if len(arr) > 1 and not bool(
                    np.all(arr[1:] > arr[:-1])
                ):
                    return self._fall_back(
                        "zero-wait batching with coincident arrivals"
                    )
            elif mw <= 1e-9:
                return self._fall_back("sub-nanosecond max_wait")
            return "rr"
        if ctl is not None:
            return self._fall_back(
                "controlled fast path requires round-robin routing"
            )
        if type(policy) is LeastLoadedPolicy:
            return "ll"
        return self._fall_back(
            f"policy {type(policy).__name__} has no columnar path"
        )

    def _run_round_robin(self, arena: RequestArena) -> EngineRun:
        """Decoupled per-instance kernel: round-robin striping fixes
        instance ``j``'s stream to ``arena[j::K]``, so each timeline is
        computed independently by :func:`_rr_feed`."""
        instances = self.fleet.instances
        K = len(instances)
        mb = self.max_batch
        mw = self.max_wait_s
        per_tab = arena.per_image
        setup_tab = arena.setup
        n = len(arena)
        arr = arena.arrival
        midx = arena.model_idx
        events = n
        for j, inst in enumerate(instances):
            a = np.ascontiguousarray(arr[j::K])
            m = np.ascontiguousarray(midx[j::K])
            (
                consumed,
                starts_m,
                fins_m,
                L_arr,
                svc_f,
                k_f,
                setups_count,
                nb,
                F_j,
                loaded_j,
            ) = _rr_feed(
                a, m, per_tab, setup_tab, mb, mw, 0.0, -1, True
            )
            arena.start[j::K] = starts_m
            arena.finish[j::K] = fins_m
            # builtins.sum over a float list is the same sequential
            # left fold as the general loop's per-batch ``+=`` chain,
            # bit-for-bit (np.sum is pairwise: close but not
            # identical); window contributions are never negative, and
            # adding 0.0 is a bitwise no-op, so the unfiltered sum
            # matches the loop that skipped empty contributions.
            busy = sum(svc_f.tolist())
            wend = inst.window_end
            if wend is not None and nb:
                fin_b = L_arr + svc_f
                contrib = np.minimum(fin_b, wend) - np.minimum(
                    L_arr, wend
                )
                inst.busy_seconds_window += sum(contrib.tolist())
            inst.busy_seconds += busy
            inst.busy_until = F_j
            inst.loaded_model = (
                arena.model_names[loaded_j] if loaded_j >= 0 else None
            )
            inst.served += consumed
            inst.batches += nb
            inst.setups += setups_count
            inst.queued_seconds = 0.0
            events += nb
        self.policy._next += n
        return EngineRun(events=events, tick_actions=0, dispatch="rr")

    def _run_least_loaded(self, arena: RequestArena) -> EngineRun:
        """Event-driven exact kernel for least-loaded routing.

        The routing feedback loop (each placement depends on every
        earlier completion) rules out vectorization, so this path wins
        by specializing: per-instance state in flat Python lists, an
        inlined ``pending_seconds`` scan, and a single event slot per
        instance instead of a heap (a launch overwrites the slot, so
        the stale-wake pops of the general loop — provably no-ops —
        never exist).
        """
        instances = self.fleet.instances
        K = len(instances)
        mb = self.max_batch
        mw = self.max_wait_s
        n = len(arena)
        a_l = arena.arrival.tolist()
        m_l = arena.model_idx.tolist()
        per_tab = arena.per_image.tolist()
        setup_tab = arena.setup.tolist()
        start_l = [-1.0] * n
        fin_l = [-1.0] * n
        bu = [0.0] * K
        qs = [0.0] * K
        loaded = [-1] * K
        queues = [deque() for _ in range(K)]
        busy = [0.0] * K
        busyw = [0.0] * K
        served = [0] * K
        nbatches = [0] * K
        setups = [0] * K
        ev = [_INF] * K
        wend_l = [inst.window_end for inst in instances]
        events = 0
        # Wake deadlines precomputed elementwise: ``arrival + mw`` and
        # ``(arrival + mw) - _EPS`` vectorized are bit-identical to the
        # general loop's scalar adds, and save two float allocations
        # per queue examination.
        dl_l = (arena.arrival + mw).tolist()
        dle_l = (arena.arrival + mw - _EPS).tolist()
        # Each request's queue-load contribution, pre-gathered so the
        # arrival hot path does one list index instead of two.
        per_req = arena.per_image[arena.model_idx].tolist()

        i = 0
        ev_index = ev.index
        # ``tmin`` caches ``min(ev)`` and is refreshed only when an
        # ``ev`` slot changes (a launch or wake reschedule): arrivals
        # that land on a busy instance leave the event slots untouched.
        # ``min``/``list.index`` run at C speed, and the index (first
        # minimum, matching the old strict-< scan) is only needed for
        # non-arrival events.
        tmin = _INF
        nexta = a_l[0] if n else _INF
        while True:
            if nexta <= tmin:
                # Arrivals exhausted and no event pending: done.  (When
                # requests remain, ``nexta`` is finite, and a finite
                # ``nexta <= tmin`` is a real arrival.)
                if i >= n:
                    break
                now = nexta
                rid = i
                i += 1
                nexta = a_l[i] if i < n else _INF
                events += 1
                # Inlined LeastLoadedPolicy._least_loaded +
                # Instance.pending_seconds (latency_scale == 1.0).
                d0 = bu[0] - now
                load = d0 if d0 > 0.0 else 0.0
                q0 = qs[0]
                if q0 > 0.0:
                    load += q0
                j = 0
                best_load = load
                for jj in range(1, K):
                    dj = bu[jj] - now
                    load = dj if dj > 0.0 else 0.0
                    qj = qs[jj]
                    if qj > 0.0:
                        load += qj
                    if load < best_load:
                        best_load = load
                        j = jj
                queues[j].append(rid)
                qs[j] += per_req[rid]
                if bu[j] > now:
                    continue
            else:
                now = tmin
                j = ev_index(tmin)
                events += 1
                if bu[j] > now:
                    continue
            # Inlined ``examine``: launch if the head batch is due
            # (wake deadline passed, or a full same-model batch), else
            # schedule the head's wake.
            q = queues[j]
            if not q:
                ev[j] = _INF
                tmin = min(ev)
                continue
            head = q[0]
            if now < dle_l[head]:
                if len(q) >= mb:
                    model = m_l[head]
                    count = 0
                    for rid2 in q:
                        if m_l[rid2] != model:
                            break
                        count += 1
                        if count == mb:
                            break
                    if count != mb:
                        ev[j] = dl_l[head]
                        tmin = min(ev)
                        continue
                else:
                    ev[j] = dl_l[head]
                    tmin = min(ev)
                    continue
            # Inlined ``launch``: drain the head's same-model batch and
            # advance the instance timeline (all float ops in the same
            # order as Instance.launch, so completions stay bit-equal).
            model = m_l[head]
            cold = loaded[j] != model
            if cold:
                setup = setup_tab[model]
                setups[j] += 1
            else:
                setup = 0.0
            per = per_tab[model]
            base = now + setup
            count = 0
            qsj = qs[j]
            popleft = q.popleft
            while True:
                rid2 = popleft()
                count += 1
                start_l[rid2] = now
                fin_l[rid2] = base + count * per
                qsj -= per
                if count == mb or not q or m_l[q[0]] != model:
                    break
            qs[j] = qsj if q else 0.0
            service = setup + count * per
            fin = now + service
            bu[j] = fin
            busy[j] += service
            w = wend_l[j]
            if w is not None:
                s0 = now if now < w else w
                e0 = fin if fin < w else w
                d0 = e0 - s0
                if d0 > 0.0:
                    busyw[j] += d0
            served[j] += count
            nbatches[j] += 1
            loaded[j] = model
            ev[j] = fin
            tmin = min(ev)

        arena.start[:] = start_l
        arena.finish[:] = fin_l
        for j, inst in enumerate(instances):
            inst.busy_until = bu[j]
            inst.loaded_model = (
                arena.model_names[loaded[j]]
                if loaded[j] >= 0
                else None
            )
            inst.busy_seconds += busy[j]
            inst.busy_seconds_window += busyw[j]
            inst.served += served[j]
            inst.batches += nbatches[j]
            inst.setups += setups[j]
            inst.queued_seconds = 0.0
        return EngineRun(events=events, tick_actions=0, dispatch="ll")

    def _run_round_robin_controlled(
        self, arena: RequestArena
    ) -> EngineRun:
        """Controlled round-robin kernel: admission fused into a
        per-instance scalar event fold.

        Round-robin striping fixes instance ``j``'s candidate stream
        to ``arena[j::K]`` *even under shedding* (the policy cursor
        advances before admission), and the declared shedding rules
        read only the chosen instance's state — so each instance's
        timeline folds independently, with no heap and no cross-
        instance event interleave.  The fold body is the ``"ll"``
        kernel's (single event slot, inlined examine/launch) plus the
        control plane's physics in the same float order as the
        general loop: priority-ordered enqueue, deadline-feasibility
        or queue-depth admission, DVFS-scaled service times, and
        busy-energy accrual.  Shed rows are masked in the arena and
        never enter a queue, exactly as when ``on_arrival`` declined
        them.

        Runs over a begun pristine :class:`EngineState` and backfills
        it (cursor, events, clock), so ``finalize``-style consumers
        that read counters from the state see a drained run.
        """
        kind, threshold = self._ctl_spec
        instances = self.fleet.instances
        K = len(instances)
        mb = self.max_batch
        mw = self.max_wait_s
        prio_aware = self.priority_queues
        n = len(arena)
        a_l = arena.arrival.tolist()
        m_l = arena.model_idx.tolist()
        per_arr = arena.per_image
        per_tab = per_arr.tolist()
        setup_tab = arena.setup.tolist()
        start_l = [-1.0] * n
        fin_l = [-1.0] * n
        # Wake deadlines and each request's unscaled queue-load
        # contribution, pre-gathered exactly like the "ll" kernel.
        dl_l = (arena.arrival + mw).tolist()
        dle_l = (arena.arrival + mw - _EPS).tolist()
        per_req = per_arr[arena.model_idx].tolist()
        prio_l = arena.priority.tolist()
        deadline_shed = kind == "deadline"
        depth_shed = kind == "queue-depth"
        # SLO deadlines are absolute; the vectorized + _EPS is
        # bit-identical to the shedder's scalar `deadline + _EPS`.
        dl_eps_l = (
            (arena.deadline + _EPS).tolist() if deadline_shed else None
        )
        shed_ids: list[int] = []
        events = n
        clock = a_l[n - 1]
        for j, inst in enumerate(instances):
            scale = inst.latency_scale
            # Scaled per-image table per instance: x * scale
            # elementwise is the same IEEE product the general loop's
            # per-launch `per_image_seconds * latency_scale` computes.
            per_s = (
                (per_arr * scale).tolist() if scale != 1.0 else per_tab
            )
            bpw = inst.busy_power_w
            wend = inst.window_end
            bu = 0.0
            qs = 0.0
            loaded = -1
            q: deque = deque()
            busy = 0.0
            busyw = 0.0
            energy = 0.0
            served = 0
            nbatches = 0
            nsetups = 0
            ev = _INF
            pos = j
            nexta = a_l[pos] if pos < n else _INF
            while True:
                if nexta <= ev:
                    # Arrival first at ties, like the (time, seq)
                    # heap (arrival sequence numbers were seeded
                    # first).  Both infinite: instance drained.
                    if pos >= n:
                        break
                    now = nexta
                    rid = pos
                    pos += K
                    nexta = a_l[pos] if pos < n else _INF
                    # -- fused admission --------------------------
                    if deadline_shed:
                        # Inlined DeadlineShedding.admit over
                        # estimated_completion / pending_seconds.
                        pending = bu - now
                        if pending < 0.0:
                            pending = 0.0
                        if qs > 0.0:
                            pending += qs * scale
                        if (now + pending) + per_s[
                            m_l[rid]
                        ] > dl_eps_l[rid]:
                            shed_ids.append(rid)
                            continue
                    elif depth_shed and len(q) >= threshold:
                        shed_ids.append(rid)
                        continue
                    # -- priority-ordered enqueue -----------------
                    # Instance.enqueue's tail scan on (priority,
                    # index): stream indices strictly increase, so
                    # the tuple compare reduces to priority <=.
                    if prio_aware and q:
                        p = prio_l[rid]
                        if prio_l[q[-1]] <= p:
                            q.append(rid)
                        else:
                            at = len(q)
                            for qrid in reversed(q):
                                if prio_l[qrid] <= p:
                                    break
                                at -= 1
                            q.insert(at, rid)
                    else:
                        q.append(rid)
                    qs += per_req[rid]
                    if bu > now:
                        continue
                else:
                    now = ev
                    events += 1
                # Inlined examine: launch if the head batch is due,
                # else schedule the head's wake in the event slot.
                if not q:
                    ev = _INF
                    continue
                head = q[0]
                if now < dle_l[head]:
                    if len(q) >= mb:
                        model = m_l[head]
                        count = 0
                        for rid2 in q:
                            if m_l[rid2] != model:
                                break
                            count += 1
                            if count == mb:
                                break
                        if count != mb:
                            ev = dl_l[head]
                            continue
                    else:
                        ev = dl_l[head]
                        continue
                # Inlined launch (Instance._serve float order):
                # scaled per-image for timing, unscaled for the
                # queued-seconds ledger, unscaled setup.
                model = m_l[head]
                if loaded != model:
                    setup = setup_tab[model]
                    nsetups += 1
                else:
                    setup = 0.0
                per = per_s[model]
                peru = per_tab[model]
                base = now + setup
                count = 0
                popleft = q.popleft
                while True:
                    rid2 = popleft()
                    count += 1
                    start_l[rid2] = now
                    fin_l[rid2] = base + count * per
                    qs -= peru
                    if count == mb or not q or m_l[q[0]] != model:
                        break
                if not q:
                    qs = 0.0
                service = setup + count * per
                fin = now + service
                bu = fin
                busy += service
                if wend is not None:
                    s0 = now if now < wend else wend
                    e0 = fin if fin < wend else wend
                    d0 = e0 - s0
                    if d0 > 0.0:
                        busyw += d0
                energy += bpw * service
                served += count
                nbatches += 1
                loaded = model
                ev = fin
            if bu > clock:
                clock = bu
            inst.busy_until = bu
            inst.loaded_model = (
                arena.model_names[loaded] if loaded >= 0 else None
            )
            inst.busy_seconds += busy
            inst.busy_seconds_window += busyw
            inst.energy_joules += energy
            inst.served += served
            inst.batches += nbatches
            inst.setups += nsetups
            inst.queued_seconds = 0.0
        arena.start[:] = start_l
        arena.finish[:] = fin_l
        if shed_ids:
            arena.shed[shed_ids] = True
        self.policy._next += n
        # Backfill the begun state so finalizers and resumption
        # checks (finished, counter reads) see a drained run.
        state = self.state
        state.cursor = n
        state.events = events
        state.clock = clock
        return EngineRun(
            events=events, tick_actions=0, dispatch="rr-ctl"
        )

    # ------------------------------------------------------------------
    # General event loop
    # ------------------------------------------------------------------

    def _maybe_launch(self, instance: Instance, now: float) -> None:
        """Launch the head batch if it is due, else schedule its
        timeout.  A batch is due when the head request has waited out
        the fill window or a full same-model run is queued behind it."""
        if instance.busy_until > now or not instance.queue:
            return
        queue = instance.queue
        head = queue[0]
        max_batch = self.max_batch
        deadline = head.arrival + self.max_wait_s
        if now >= deadline - _EPS:
            due = True
        elif len(queue) >= max_batch:
            model = head.model
            count = 0
            for queued in queue:
                if queued.model != model:
                    break
                count += 1
                if count == max_batch:
                    break
            due = count == max_batch
        else:
            due = False
        state = self.state
        state.seq += 1
        if due:
            # Peek the members before the destructive pop so the launch
            # observer can attribute the batch (identical selection:
            # launch_head is launch(next_batch(max_batch))).
            members = (
                instance.next_batch(max_batch).requests
                if self._on_launch is not None
                else None
            )
            finish = instance.launch_head(max_batch, now)
            heappush(
                state.heap,
                (finish, state.seq, _COMPLETE, instance.index),
            )
            if members is not None:
                self._on_launch(instance, members, now, finish, self)
        else:
            heappush(
                state.heap,
                (deadline, state.seq, _WAKE, instance.index),
            )

    def begin(self, requests: Sequence[Request]) -> EngineState:
        """Arm the general loop over ``requests`` without running it.

        Seeds a fresh :class:`EngineState` (tick scheduled, sequence
        counter past the arrivals' implicit numbers, cursor at zero)
        and remembers the request stream so repeated
        :meth:`run_until` calls can step the run in bounded slices.
        """
        n = len(requests)
        heap: list = []
        # Arrivals implicitly own sequence numbers 1..n, so at equal
        # timestamps they order before every scheduled event, exactly
        # as when the legacy loops seeded them into the heap first.
        seq = n
        tick_s = self.tick_s
        if tick_s is not None:
            seq += 1
            heappush(heap, (tick_s, seq, _TICK, None))
        # With no ticks and no custom hooks nothing can change instance
        # activity mid-run, so the active slice is the fleet itself
        # (skip per-arrival filtering).  Any hook — not just on_tick —
        # may power instances down, so their presence forces the
        # rebuild, exactly like the legacy control loop's per-arrival
        # active view.
        static_fleet = (
            tick_s is None
            and self._admit is None
            and self._on_complete is None
            and self._on_launch is None
            and all(
                instance.active for instance in self.fleet.instances
            )
        )
        self._requests = requests
        self.state = EngineState(
            heap=heap,
            seq=seq,
            clock=0.0,
            cursor=0,
            events=0,
            tick_actions=0,
            peak_heap=0,
            static_fleet=static_fleet,
            rng_states={},
        )
        return self.state

    @property
    def finished(self) -> bool:
        """True once a begun run has consumed every arrival and
        drained its event heap (nothing left for ``run_until``)."""
        state = self.state
        return (
            state is not None
            and state.cursor >= len(self._requests)
            and not state.heap
        )

    def run_until(self, t: float) -> EngineRun:
        """Advance the begun run through every event at time <= ``t``.

        The loop body is the legacy general event loop verbatim, with
        execution state loaded from :attr:`state` on entry and written
        back on exit; the only additions are the two horizon checks,
        which compare against ``t`` before consuming an arrival or
        popping a scheduled event and are no-ops at ``t = inf`` — so
        ``run_until(inf)`` is bit-for-bit the legacy ``run()``.
        Returns the *cumulative* counters of the run so far.

        A *pristine* begun state (no arrivals consumed, no events
        processed) draining to infinity over an arena may dispatch to
        the controlled round-robin kernel instead — the fast path for
        ``engine.begin(...)``-then-drain callers like the control
        plane, exact by the same parity pins as :meth:`run`.  Bounded
        horizons and resumed runs always step the general loop.
        """
        state = self.state
        requests = self._requests
        is_arena = isinstance(requests, RequestArena)
        pristine = (
            state.cursor == 0
            and state.events == 0
            and state.clock == 0.0
        )
        if pristine and t == _INF and is_arena and len(requests):
            mode = self._fast_mode(requests)
            if mode == "rr-ctl":
                self.last_run = self._run_round_robin_controlled(
                    requests
                )
                return self.last_run
            if mode is not None:
                # The serve-plane kernels dispatch via run();
                # a begun run steps the general loop unchanged.
                self._fast_reason = (
                    f'begun run ("{mode}" dispatches via run())'
                )
        elif not self._fast_reason:
            # Diagnose at most once per engine (the reason is sticky
            # until _fast_mode reassesses): lead with the config-level
            # precondition when one fails, which is identical whether
            # the run drains in one call, in bounded checkpoint
            # slices, or in a resumed process — tick_s and hook
            # checks precede fleet-state checks — so checkpointed
            # reruns report byte-identical telemetry.  Run mechanics
            # are the reason only when the config itself qualifies.
            if not is_arena:
                self._fast_reason = "request stream is not an arena"
            elif len(requests) and self._fast_mode(requests) is not None:
                self._fast_reason = (
                    "bounded run_until horizon"
                    if t != _INF
                    else "run already in progress"
                )
        instances = self.fleet.instances
        policy = self.policy
        admit = self._admit
        # Batched hook dispatch: hooks that opted in (overrode
        # on_arrival_batch) get the arena + row index instead of the
        # scalar on_arrival, amortizing per-event view overhead.
        # Only arena streams qualify — list streams keep the scalar
        # hook, whose semantics the batch hook must match.
        admit_batch = (
            self._admit_batch
            if isinstance(requests, RequestArena)
            else None
        )
        on_complete = self._on_complete
        hooks = self.hooks
        priority = self.priority_queues
        tick_s = self.tick_s
        static_fleet = state.static_fleet
        heap = state.heap
        n = len(requests)
        i = state.cursor
        events = state.events
        tick_actions = state.tick_actions
        peak_heap = state.peak_heap
        now = state.clock
        next_arrival = requests[i].arrival if i < n else _INF
        while True:
            # Peak sampled at event boundaries only, so it is invariant
            # under run_until slicing (a boundary re-sample is a max
            # no-op) — resumed runs report the identical peak.
            if len(heap) > peak_heap:
                peak_heap = len(heap)
            if i < n and (
                not heap or next_arrival <= heap[0][0]
            ):
                if next_arrival > t:
                    break
                request = requests[i]
                i += 1
                next_arrival = (
                    requests[i].arrival if i < n else _INF
                )
                events += 1
                now = request.arrival
                active = (
                    instances
                    if static_fleet
                    else [
                        instance
                        for instance in instances
                        if instance.active
                    ]
                )
                instance = active[policy.choose(request, active, now)]
                if admit_batch is not None:
                    if not admit_batch(
                        requests, request.i, request, instance, now,
                        self,
                    ):
                        request.shed = True
                        continue
                elif admit is not None and not admit(
                    request, instance, now, self
                ):
                    request.shed = True
                    continue
                instance.enqueue(request, priority_aware=priority)
                self._maybe_launch(instance, now)
                continue
            if not heap:
                break
            if heap[0][0] > t:
                break
            now, _, kind, payload = heappop(heap)
            events += 1
            if kind == _TICK:
                before = [
                    instance.busy_until for instance in instances
                ]
                tick_actions += hooks.on_tick(now, self)
                # A tick may extend busy_until (e.g. a power-up warm-up)
                # without launching a batch, which would swallow the
                # instance's pending completion; re-arm a wake at any
                # grown horizon so its queue is re-examined (the loop
                # invariant is "busy implies an event at busy_until").
                for instance in instances:
                    grown = instance.busy_until
                    if grown > before[instance.index] and grown > now:
                        state.seq += 1
                        heappush(
                            heap,
                            (grown, state.seq, _WAKE, instance.index),
                        )
                if i < n or any(
                    instance.queue or instance.busy_until > now + _EPS
                    for instance in instances
                ):
                    state.seq += 1
                    heappush(
                        heap, (now + tick_s, state.seq, _TICK, None)
                    )
            else:  # _COMPLETE and _WAKE both just re-examine the queue
                instance = instances[payload]
                self._maybe_launch(instance, now)
                if on_complete is not None:
                    on_complete(instance, now, self)
        state.cursor = i
        state.events = events
        state.tick_actions = tick_actions
        state.peak_heap = peak_heap
        state.clock = now if t == _INF else t
        run = EngineRun(
            events=events,
            tick_actions=tick_actions,
            peak_heap=peak_heap,
            dispatch="general",
            fallback=self._fast_reason,
        )
        self.last_run = run
        return run

    def run(self, requests: Sequence[Request]) -> EngineRun:
        """Play ``requests`` (non-decreasing arrival order) to drain.

        ``requests`` is a :class:`~repro.serve.arena.RequestArena` or
        any sequence of request views; arenas additionally unlock the
        columnar fast paths when the configuration allows (see
        :meth:`_fast_mode`).  Either way the loop mutates the request
        state in place — list callers (tenancy's merged home+spill
        streams) observe writes through their views.
        """
        if isinstance(requests, RequestArena) and len(requests):
            mode = self._fast_mode(requests)
            if mode == "rr":
                self.last_run = self._run_round_robin(requests)
                return self.last_run
            if mode == "ll":
                self.last_run = self._run_least_loaded(requests)
                return self.last_run
        self.begin(requests)
        return self.run_until(_INF)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Capture the begun run's complete execution state.

        Returns a plain picklable dict: the :class:`EngineState`
        fields, every instance's ``state_dict`` plus its queue as
        request stream positions, the policy state, and the hook
        state.  Queues serialize as indices because the invariant
        ``request.index == position in the stream`` holds for every
        engine caller (arena builds index with ``arange``; tenancy
        reindexes merged streams), so :meth:`restore` can rebind the
        views against the caller-provided stream.
        """
        state = self.state
        instances = []
        for inst in self.fleet.instances:
            entry = inst.state_dict()
            entry["queue"] = [request.index for request in inst.queue]
            instances.append(entry)
        return {
            "state": {
                "heap": list(state.heap),
                "seq": state.seq,
                "clock": state.clock,
                "cursor": state.cursor,
                "events": state.events,
                "tick_actions": state.tick_actions,
                "peak_heap": state.peak_heap,
                "static_fleet": state.static_fleet,
                "rng_states": state.rng_states,
            },
            "instances": instances,
            "policy": self.policy.state_dict(),
            "hooks": self.hooks.state_dict(),
        }

    def restore(
        self, snapshot: dict, requests: Sequence[Request]
    ) -> EngineState:
        """Rebind a :meth:`snapshot` onto this engine and ``requests``.

        The fleet/policy/hooks objects must have been rebuilt exactly
        as for the original run (they carry no snapshot identity, only
        state); ``requests`` must be the same stream the snapshot was
        taken over, including any mid-run column mutations — restore
        rebinds queue views by stream position but never rewrites
        request columns.
        """
        fields = snapshot["state"]
        self._requests = requests
        self.state = EngineState(
            heap=list(fields["heap"]),
            seq=fields["seq"],
            clock=fields["clock"],
            cursor=fields["cursor"],
            events=fields["events"],
            tick_actions=fields["tick_actions"],
            peak_heap=fields.get("peak_heap", 0),
            static_fleet=fields["static_fleet"],
            rng_states=dict(fields["rng_states"]),
        )
        for inst, entry in zip(
            self.fleet.instances, snapshot["instances"]
        ):
            inst.load_state_dict(entry)
            inst.queue.clear()
            inst.queue.extend(requests[idx] for idx in entry["queue"])
        self.policy.load_state_dict(snapshot["policy"])
        self.hooks.load_state_dict(snapshot["hooks"])
        return self.state


# ----------------------------------------------------------------------
# Round-robin columnar kernel
# ----------------------------------------------------------------------

_EMPTY_F = np.empty(0, dtype=np.float64)
_EMPTY_I = np.empty(0, dtype=np.int64)


def _rr_feed(
    a: np.ndarray,
    m: np.ndarray,
    per_tab: np.ndarray,
    setup_tab: np.ndarray,
    mb: int,
    mw: float,
    F: float,
    loaded: int,
    final: bool,
):
    """Advance one instance's timeline over a buffered stream stretch.

    ``a``/``m`` are the instance's arrival times and model ids (its
    round-robin slice), ``F`` its ``busy_until`` and ``loaded`` the
    resident model id carried from the previous feed (``-1`` = cold).
    With ``final=False`` (streaming) the feed stops before any batch
    whose membership could still change with future arrivals (an open
    trailing run shorter than ``mb``), deferring at most ``mb - 1``
    positions to the next feed.

    The kernel has three stages:

    1. *Canonical partition* (vectorized): maximal same-model runs are
       cut into ``mb``-sized canonical batches; per batch the wake
       deadline, full-batch trigger, cold-start flag, and service time
       are computed as numpy arrays.
    2. *Launch fold* (Python, per batch): ``L = max(F, due)`` with the
       general loop's epsilon rule; a canonical batch is accepted when
       its last member arrived by its launch (``lasta <= L``).
    3. *Split repair* (scalar, only when 2 rejects): an idle instance
       launched a partial batch — replay exact batches with
       ``bisect_right`` member counts until the cursor realigns with a
       canonical boundary.

    Returns ``(consumed, starts, fins, L_arr, svc, k, setups,
    n_batches, F, loaded)``: per-member start/finish arrays covering
    positions ``[0, consumed)`` in stream order, per-batch launch and
    service arrays in launch order, and the carried state.
    """
    nj = len(a)
    if nj == 0:
        return (
            0, _EMPTY_F, _EMPTY_F, _EMPTY_F, _EMPTY_F, _EMPTY_I,
            0, 0, F, loaded,
        )
    # -- stage 1: canonical partition --------------------------------
    if nj > 1:
        change = np.flatnonzero(m[1:] != m[:-1]) + 1
        run_starts = np.concatenate(
            (np.zeros(1, dtype=np.int64), change)
        )
        run_ends = np.concatenate(
            (change, np.full(1, nj, dtype=np.int64))
        )
    else:
        run_starts = np.zeros(1, dtype=np.int64)
        run_ends = np.full(1, nj, dtype=np.int64)
    run_len = run_ends - run_starts
    nb_run = -(-run_len // mb)
    total_b = int(nb_run.sum())
    first_of_run = np.cumsum(nb_run) - nb_run
    s = np.repeat(run_starts - mb * first_of_run, nb_run) + mb * np.arange(
        total_b, dtype=np.int64
    )
    rend = np.repeat(run_ends, nb_run)
    e = np.minimum(s + mb, rend)
    k = e - s
    M = m[s]
    prev = np.empty(total_b, dtype=np.int64)
    prev[0] = loaded
    prev[1:] = M[:-1]
    cold = M != prev
    per_b = per_tab[M]
    setup_eff = np.where(cold, setup_tab[M], 0.0)
    svc = setup_eff + k * per_b
    heada = a[s]
    wake = heada + mw
    lasta = a[e - 1]
    due = np.where(k == mb, np.minimum(wake, lasta), wake)
    if final:
        stop_t = total_b
    else:
        unsafe = (rend == nj) & (s + mb > nj)
        idx = np.flatnonzero(unsafe)
        stop_t = int(idx[0]) if idx.size else total_b

    # -- stage 2: launch fold ----------------------------------------
    due_l = due.tolist()
    svc_l = svc.tolist()
    lasta_l = lasta.tolist()
    heada_l = heada.tolist()
    # Repair-path lookups are materialized lazily: most feeds accept
    # every canonical batch, and these conversions would otherwise
    # rival the fold itself.
    s_l = rend_l = M_l = None
    a_list = m_list = per_tab_l = setup_tab_l = None
    L_list: list[float] = []
    append_L = L_list.append
    pieces: list[tuple] = []
    sc_k: list[int] = []
    sc_setup: list[float] = []
    sc_per: list[float] = []
    sc_svc: list[float] = []
    scalar_setups = 0
    t = 0
    canon_from = 0
    F_ = F
    consumed = None
    # One persistent iterator consumed strictly forward: repairs that
    # replay canonical batches discard the replayed span instead of
    # re-skimming from the start.
    fold = zip(
        islice(due_l, stop_t),
        islice(lasta_l, stop_t),
        islice(svc_l, stop_t),
    )
    pos = 0
    while t < stop_t:
        if t > pos:
            for _ in islice(fold, t - pos):
                pass
            pos = t
        rejected = False
        for i, (d, lasta_t, svc_t) in enumerate(fold, pos):
            if d <= F_:
                # Busy at the deadline: launch at the completion F.
                if lasta_t <= F_:
                    append_L(F_)
                    F_ += svc_t
                    continue
                L = F_
            else:
                # The general loop launches at a completion F when the
                # head's wake deadline (head arrival + max-wait) is
                # within _EPS at or below F and the head has arrived.
                hd = heada_l[i]
                if hd + mw - F_ <= _EPS and hd <= F_:
                    L = F_
                else:
                    L = d
                if lasta_t <= L:
                    append_L(L)
                    F_ = L + svc_t
                    continue
            t = i
            pos = i + 1
            rejected = True
            break
        if not rejected:
            t = stop_t
            break
        # -- stage 3: split repair -----------------------------------
        if a_list is None:
            s_l = s.tolist()
            rend_l = rend.tolist()
            M_l = M.tolist()
            a_list = a.tolist()
            m_list = m.tolist()
            per_tab_l = per_tab.tolist()
            setup_tab_l = setup_tab.tolist()
        if t > canon_from:
            pieces.append(("c", canon_from, t))
        c = s_l[t]
        run_end_c = rend_l[t]
        loaded_c = M_l[t - 1] if t > 0 else loaded
        tt = t + 1
        x0 = len(sc_k)
        while True:
            if not final and run_end_c == nj and c + mb > nj:
                consumed = c
                break
            cap = c + mb
            if cap > run_end_c:
                cap = run_end_c
            wake_c = a_list[c] + mw
            if cap - c == mb:
                t_full = a_list[cap - 1]
                d_c = t_full if t_full < wake_c else wake_c
            else:
                d_c = wake_c
            if d_c > F_:
                if wake_c - F_ <= _EPS and a_list[c] <= F_:
                    L = F_
                else:
                    L = d_c
            else:
                L = F_
            k_real = bisect_right(a_list, L, c, cap) - c
            model_c = m_list[c]
            cold_c = loaded_c != model_c
            setup_c = setup_tab_l[model_c] if cold_c else 0.0
            per_c = per_tab_l[model_c]
            svc_c = setup_c + k_real * per_c
            append_L(L)
            sc_k.append(k_real)
            sc_setup.append(setup_c)
            sc_per.append(per_c)
            sc_svc.append(svc_c)
            if cold_c:
                scalar_setups += 1
            F_ = L + svc_c
            loaded_c = model_c
            c += k_real
            while tt < total_b and s_l[tt] < c:
                tt += 1
            if tt < total_b:
                if s_l[tt] == c:
                    t = tt
                    break
                run_end_c = rend_l[tt - 1]
            else:
                if c >= nj:
                    t = total_b
                    break
                run_end_c = rend_l[total_b - 1]
        if len(sc_k) > x0:
            pieces.append(("x", x0, len(sc_k)))
        canon_from = t
        if consumed is not None:
            break
    if t > canon_from:
        pieces.append(("c", canon_from, t))
    if consumed is None:
        consumed = int(s[stop_t]) if stop_t < total_b else nj

    # -- assembly ----------------------------------------------------
    nb = len(L_list)
    if nb == 0:
        return (
            0, _EMPTY_F, _EMPTY_F, _EMPTY_F, _EMPTY_F, _EMPTY_I,
            0, 0, F_, loaded,
        )
    L_arr = np.array(L_list, dtype=np.float64)
    if len(pieces) == 1 and pieces[0][0] == "c":
        t0, t1 = pieces[0][1], pieces[0][2]
        k_f = k[t0:t1]
        setup_f = setup_eff[t0:t1]
        per_f = per_b[t0:t1]
        svc_f = svc[t0:t1]
        setups_count = int(np.count_nonzero(cold[t0:t1]))
    else:
        sck = np.asarray(sc_k, dtype=np.int64)
        scsetup = np.asarray(sc_setup, dtype=np.float64)
        scper = np.asarray(sc_per, dtype=np.float64)
        scsvc = np.asarray(sc_svc, dtype=np.float64)
        parts_k, parts_setup, parts_per, parts_svc = [], [], [], []
        setups_count = scalar_setups
        for kind, x0, x1 in pieces:
            if kind == "c":
                parts_k.append(k[x0:x1])
                parts_setup.append(setup_eff[x0:x1])
                parts_per.append(per_b[x0:x1])
                parts_svc.append(svc[x0:x1])
                setups_count += int(np.count_nonzero(cold[x0:x1]))
            else:
                parts_k.append(sck[x0:x1])
                parts_setup.append(scsetup[x0:x1])
                parts_per.append(scper[x0:x1])
                parts_svc.append(scsvc[x0:x1])
        k_f = np.concatenate(parts_k)
        setup_f = np.concatenate(parts_setup)
        per_f = np.concatenate(parts_per)
        svc_f = np.concatenate(parts_svc)
    members = int(k_f.sum())
    base = L_arr + setup_f
    starts_m = np.repeat(L_arr, k_f)
    offsets = np.cumsum(k_f) - k_f - 1
    ranks = np.arange(members, dtype=np.int64) - np.repeat(offsets, k_f)
    fins_m = np.repeat(base, k_f) + ranks * np.repeat(per_f, k_f)
    loaded_out = int(m[consumed - 1]) if consumed else loaded
    return (
        consumed,
        starts_m,
        fins_m,
        L_arr,
        svc_f,
        k_f,
        setups_count,
        nb,
        F_,
        loaded_out,
    )


# ----------------------------------------------------------------------
# Request-stream construction and summarization
# ----------------------------------------------------------------------


def build_requests(
    mix: ScenarioMix,
    times: np.ndarray,
    rng: np.random.Generator,
    slo_classes: tuple | None = None,
) -> RequestArena:
    """Materialize the request stream for one run as a columnar arena.

    Draws each request's model from the mix's weights (and, when
    ``slo_classes`` is given, its SLO class from the class shares,
    interleaved model-then-class per request — the draw order the
    legacy per-request sampling loops used, so fixed seeds reproduce).
    The inverse-CDF draws are vectorized: one uniform block replaces
    2 x n Python-level generator calls on the same bit stream.

    A class bound to a model (``SLOClass.model``) applies only to that
    model's requests: each model draws its class from the classes bound
    to it, falling back to the unbound (tenant-default) classes when
    none are.  The uniform block is identical either way, so adding a
    binding never perturbs another model's draws.

    Returns a :class:`~repro.serve.arena.RequestArena`; iterate or
    index it for object-style :class:`~repro.serve.arena.Request`
    views.

    Raises:
        ConfigError: If bindings leave some mix model with no
            applicable class.
    """
    return RequestArena.build(mix, times, rng, slo_classes)


@dataclass(slots=True)
class RequestSummary:
    """Aggregate of a drained request stream.

    Attributes:
        completed: Requests that finished (offered minus shed).
        latencies: Arrival-to-completion seconds, arrival order
            (``stats="exact"`` only; ``None`` in sketch mode) —
            genuinely *empty* when nothing completed (an all-shed
            overload run); report builders must special-case
            ``completed == 0`` instead of feeding the array to
            ``mean``/``percentile`` (NaN + RuntimeWarning).
        waits: Arrival-to-launch seconds, same shape (exact only).
        model_counts: Sorted ``(model, completed)`` pairs.
        max_finish: Latest completion (``-inf`` when none).
        class_buckets: SLO-class name -> ``[offered, met, latencies]``
            (``None`` unless class tracking was requested); the
            latencies entry is a list/array in exact mode and a
            :class:`~repro.serve.sketch.StreamingLatencyStats` in
            sketch mode.
        model_buckets: Model name -> ``[offered, met, latencies]``
            over *all* of the model's requests including shed ones
            (``None`` unless model tracking was requested) — the
            per-tenant view behind per-model SLO reporting.
        stats: ``"exact"`` or ``"sketch"``.
        latency_sketch: Sketch-mode latency aggregates (mean/max exact,
            percentiles from the t-digest).
        wait_mean_value: Sketch-mode mean wait.

    Report builders should read latency statistics through
    :meth:`latency_mean` / :meth:`latency_percentile` /
    :meth:`latency_max` / :meth:`wait_mean`, which dispatch on the
    mode; in exact mode they reproduce the legacy
    ``float(np.percentile(...))`` calls bit-for-bit.
    """

    completed: int
    latencies: np.ndarray | None
    waits: np.ndarray | None
    model_counts: tuple
    max_finish: float
    class_buckets: dict | None
    model_buckets: dict | None = None
    stats: str = "exact"
    latency_sketch: StreamingLatencyStats | None = None
    wait_mean_value: float = 0.0

    def latency_mean(self) -> float:
        if self.stats == "sketch":
            return self.latency_sketch.mean
        return float(self.latencies.mean())

    def latency_percentile(self, pct: float) -> float:
        if self.stats == "sketch":
            return self.latency_sketch.quantile(pct / 100.0)
        return float(np.percentile(self.latencies, pct))

    def latency_max(self) -> float:
        if self.stats == "sketch":
            return self.latency_sketch.max
        return float(self.latencies.max())

    def wait_mean(self) -> float:
        if self.stats == "sketch":
            return self.wait_mean_value
        return float(self.waits.mean())


def _sketch_of(values) -> StreamingLatencyStats:
    stats = StreamingLatencyStats()
    stats.add(np.asarray(values, dtype=np.float64))
    return stats


def _finish_summary(
    completed: int,
    latencies: np.ndarray,
    waits: np.ndarray,
    model_counts: tuple,
    max_finish: float,
    buckets: dict | None,
    model_buckets: dict | None,
    stats: str,
) -> RequestSummary:
    if stats == "exact":
        return RequestSummary(
            completed=completed,
            latencies=latencies,
            waits=waits,
            model_counts=model_counts,
            max_finish=max_finish,
            class_buckets=buckets,
            model_buckets=model_buckets,
        )
    for bucket_map in (buckets, model_buckets):
        if bucket_map is not None:
            for bucket in bucket_map.values():
                bucket[2] = _sketch_of(bucket[2])
    return RequestSummary(
        completed=completed,
        latencies=None,
        waits=None,
        model_counts=model_counts,
        max_finish=max_finish,
        class_buckets=buckets,
        model_buckets=model_buckets,
        stats="sketch",
        latency_sketch=_sketch_of(latencies),
        wait_mean_value=(
            float(np.asarray(waits).mean()) if completed else 0.0
        ),
    )


def _summarize_arena(
    arena: RequestArena,
    track_classes: bool,
    track_models: bool,
    stats: str,
) -> RequestSummary:
    """Vectorized summarizer over arena columns (exact floats: the
    same subtractions/comparisons the object loop performed)."""
    shed = arena.shed
    finish = arena.finish
    arrival = arena.arrival
    not_shed = ~shed
    done = not_shed & (finish >= 0.0)
    unserved = int(np.count_nonzero(not_shed & (finish < 0.0)))
    if unserved:
        raise ConfigError(
            f"simulation ended with {unserved} unserved requests"
        )
    latencies = finish[done] - arrival[done]
    waits = arena.start[done] - arrival[done]
    completed = int(latencies.size)
    if completed:
        counts = np.bincount(
            arena.model_idx[done], minlength=len(arena.model_names)
        ).tolist()
        model_counts = tuple(
            sorted(
                (name, int(count))
                for name, count in zip(arena.model_names, counts)
                if count
            )
        )
        max_finish = float(finish[done].max())
    else:
        model_counts = ()
        max_finish = float("-inf")
    buckets = None
    model_buckets = None
    if track_classes or track_models:
        met = done & (finish <= arena.deadline)
        if track_classes:
            buckets = {}
            ci = arena.class_idx
            for cid in np.unique(ci).tolist():
                cmask = ci == cid
                name = "" if cid < 0 else arena.slo_names[cid]
                sel = cmask & done
                buckets[name] = [
                    int(np.count_nonzero(cmask)),
                    int(np.count_nonzero(cmask & met)),
                    finish[sel] - arrival[sel],
                ]
        if track_models:
            model_buckets = {}
            mi = arena.model_idx
            for mid in np.unique(mi).tolist():
                mmask = mi == mid
                sel = mmask & done
                model_buckets[arena.model_names[mid]] = [
                    int(np.count_nonzero(mmask)),
                    int(np.count_nonzero(mmask & met)),
                    finish[sel] - arrival[sel],
                ]
    return _finish_summary(
        completed,
        latencies,
        waits,
        model_counts,
        max_finish,
        buckets,
        model_buckets,
        stats,
    )


def summarize_requests(
    requests: Sequence[Request] | RequestArena,
    track_classes: bool = False,
    track_models: bool = False,
    stats: str = "exact",
) -> RequestSummary:
    """Aggregate a drained run.

    Arenas take a vectorized columnar pass; plain sequences of views
    (tenancy's merged home+spill streams, tests) take the legacy
    single O(n) object walk.  Both produce identical exact statistics;
    ``stats="sketch"`` swaps latency retention for t-digest sketches
    (see :class:`RequestSummary`).

    Raises:
        ConfigError: If any admitted request never completed — the
            event loop's drain invariant was violated.
    """
    if isinstance(requests, RequestArena):
        return _summarize_arena(
            requests, track_classes, track_models, stats
        )
    latencies: list[float] = []
    waits: list[float] = []
    counts: dict[str, int] = {}
    buckets: dict[str, list] | None = {} if track_classes else None
    model_buckets: dict[str, list] | None = (
        {} if track_models else None
    )
    unserved = 0
    max_finish = float("-inf")
    for request in requests:
        if track_classes:
            bucket = buckets.get(request.slo)
            if bucket is None:
                bucket = buckets[request.slo] = [0, 0, []]
            bucket[0] += 1
        if track_models:
            mbucket = model_buckets.get(request.model)
            if mbucket is None:
                mbucket = model_buckets[request.model] = [0, 0, []]
            mbucket[0] += 1
        if request.shed:
            continue
        finish = request.finish
        if finish < 0:
            unserved += 1
            continue
        arrival = request.arrival
        latency = finish - arrival
        latencies.append(latency)
        waits.append(request.start - arrival)
        model = request.model
        counts[model] = counts.get(model, 0) + 1
        if finish > max_finish:
            max_finish = finish
        met = finish <= request.deadline
        if track_classes:
            bucket[1] += met
            bucket[2].append(latency)
        if track_models:
            mbucket[1] += met
            mbucket[2].append(latency)
    if unserved:
        raise ConfigError(
            f"simulation ended with {unserved} unserved requests"
        )
    return _finish_summary(
        len(latencies),
        np.array(latencies),
        np.array(waits),
        tuple(sorted(counts.items())),
        max_finish,
        buckets,
        model_buckets,
        stats,
    )


# ----------------------------------------------------------------------
# Streaming round-robin runner (flat memory in request count)
# ----------------------------------------------------------------------


@dataclass(slots=True)
class StreamingSummary:
    """What :func:`run_streaming_round_robin` hands the report builder.

    Latency aggregates live in ``latency`` (a
    :class:`~repro.serve.sketch.StreamingLatencyStats`); fleet
    counters (busy seconds, served, batches, setups, window busy time)
    were written to the instances in place, exactly like an engine run.
    """

    completed: int
    latency: StreamingLatencyStats
    wait_mean: float
    model_counts: tuple
    max_finish: float
    window_end: float
    events: int


def run_streaming_round_robin(
    fleet: Fleet,
    mix: ScenarioMix,
    arrivals,
    n: int,
    rng: np.random.Generator,
    max_batch: int,
    max_wait_s: float,
    chunk: int = _STREAM_CHUNK,
) -> StreamingSummary:
    """Round-robin serve-plane run with O(chunk) resident memory.

    Pulls arrival timestamps chunk-at-a-time (see
    :func:`repro.serve.arrival.iter_arrival_times`), draws each
    chunk's model ids, and advances every instance's timeline with the
    same :func:`_rr_feed` kernel the exact fast path uses — only
    deferring the few trailing positions (< ``max_batch``) whose batch
    membership could still change.  Completed latencies are folded
    into a t-digest and discarded, so memory stays flat in ``n``: the
    million-request mode.

    The simulated *physics* per processed stream are the engine's
    exactly; the stream itself differs bit-wise from exact mode
    because times and model draws interleave chunk-by-chunk on the
    RNG (documented in ``ServingScenario.stats``), so sketch-mode
    scenarios carry a distinct cache key.
    """
    instances = fleet.instances
    K = len(instances)
    per_tab = np.array(
        [p.per_image_seconds for p in mix.profiles], dtype=np.float64
    )
    setup_tab = np.array(
        [p.setup_seconds for p in mix.profiles], dtype=np.float64
    )
    cum_weights = np.cumsum(
        np.asarray(mix.weights, dtype=np.float64)
    )
    nmodels = len(mix.profiles)
    latency = StreamingLatencyStats()
    wait_sum = 0.0
    counts = np.zeros(nmodels, dtype=np.int64)
    max_finish = float("-inf")
    F = [0.0] * K
    loaded = [-1] * K
    buf_a: list[list[np.ndarray]] = [[] for _ in range(K)]
    buf_m: list[list[np.ndarray]] = [[] for _ in range(K)]
    busy = [0.0] * K
    busyw = [0.0] * K
    served = [0] * K
    nbatches = [0] * K
    setups = [0] * K
    # Batches whose finish may straddle the (yet unknown) busy-window
    # end: flushed to busyw once the arrival horizon passes them.
    pend: list[list[tuple[float, float, float]]] = [
        [] for _ in range(K)
    ]
    offset = 0
    last_arrival = 0.0
    events = 0

    def absorb(j: int, final: bool) -> None:
        nonlocal wait_sum, max_finish, events
        chunks_a = buf_a[j]
        if not chunks_a:
            return
        a = (
            np.concatenate(chunks_a)
            if len(chunks_a) > 1
            else chunks_a[0]
        )
        m = (
            np.concatenate(buf_m[j])
            if len(buf_m[j]) > 1
            else buf_m[j][0]
        )
        (
            consumed,
            starts_m,
            fins_m,
            L_arr,
            svc_f,
            _k_f,
            setups_count,
            nb,
            F_j,
            loaded_j,
        ) = _rr_feed(
            a, m, per_tab, setup_tab, max_batch, max_wait_s,
            F[j], loaded[j], final,
        )
        F[j] = F_j
        loaded[j] = loaded_j
        if consumed < len(a):
            buf_a[j] = [a[consumed:]]
            buf_m[j] = [m[consumed:]]
        else:
            buf_a[j] = []
            buf_m[j] = []
        events += nb
        if not consumed:
            return
        a_done = a[:consumed]
        latency.add(fins_m - a_done)
        wait_sum += float((starts_m - a_done).sum())
        counts_j = np.bincount(m[:consumed], minlength=nmodels)
        np.add(counts, counts_j, out=counts)
        tail = float(fins_m[-1])
        if tail > max_finish:
            max_finish = tail
        served[j] += consumed
        nbatches[j] += nb
        setups[j] += setups_count
        busy[j] += float(svc_f.sum())
        fin_b = L_arr + svc_f
        inside = fin_b <= last_arrival
        busyw[j] += float(svc_f[inside].sum())
        for L_val, fin_val, svc_val in zip(
            L_arr[~inside].tolist(),
            fin_b[~inside].tolist(),
            svc_f[~inside].tolist(),
        ):
            pend[j].append((L_val, fin_val, svc_val))

    from .arrival import iter_arrival_times

    for times in iter_arrival_times(arrivals, n, rng, chunk):
        cn = len(times)
        u = rng.random(cn)
        midx = np.minimum(
            np.searchsorted(
                cum_weights, u * cum_weights[-1], side="right"
            ),
            nmodels - 1,
        ).astype(np.int64)
        last_arrival = float(times[cn - 1])
        events += cn
        for j in range(K):
            first = (j - offset) % K
            a_new = times[first::K]
            if len(a_new):
                buf_a[j].append(np.ascontiguousarray(a_new))
                buf_m[j].append(np.ascontiguousarray(midx[first::K]))
            absorb(j, final=False)
            # Flush window-pending batches the horizon has passed.
            if pend[j]:
                keep = []
                for L_val, fin_val, svc_val in pend[j]:
                    if fin_val <= last_arrival:
                        busyw[j] += svc_val
                    else:
                        keep.append((L_val, fin_val, svc_val))
                pend[j] = keep
        offset = (offset + cn) % K
    for j in range(K):
        absorb(j, final=True)
    window_end = last_arrival
    for j, inst in enumerate(instances):
        for L_val, fin_val, svc_val in pend[j]:
            s0 = L_val if L_val < window_end else window_end
            e0 = fin_val if fin_val < window_end else window_end
            d0 = e0 - s0
            if d0 > 0.0:
                busyw[j] += d0
        inst.busy_until = F[j]
        inst.loaded_model = (
            mix.profiles[loaded[j]].name if loaded[j] >= 0 else None
        )
        inst.busy_seconds += busy[j]
        inst.busy_seconds_window += busyw[j]
        inst.served += served[j]
        inst.batches += nbatches[j]
        inst.setups += setups[j]
        inst.window_end = window_end
    model_counts = tuple(
        sorted(
            (p.name, int(c))
            for p, c in zip(mix.profiles, counts.tolist())
            if c
        )
    )
    return StreamingSummary(
        completed=int(sum(served)),
        latency=latency,
        wait_mean=wait_sum / n if n else 0.0,
        model_counts=model_counts,
        max_finish=max_finish,
        window_end=window_end,
        events=events,
    )


def realized_offered_qps(
    arrival: str, times: np.ndarray, n: int, qps: float
) -> float:
    """The offered rate a report should carry: trace replays report the
    rate of the prefix actually played, everything else the configured
    rate."""
    if arrival == "trace":
        span = float(times[-1])
        return n / span if span > 0 else float(n)
    return float(qps)
