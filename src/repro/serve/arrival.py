"""Request arrival processes for the serving simulator.

Four traffic shapes cover the deployment stories the ROADMAP cares
about: steady user traffic (Poisson), flash-crowd burstiness (a
two-state Markov-modulated Poisson process), day/night load swings (a
sinusoidally modulated Poisson process that exercises autoscalers), and
replayed production traces.  Every process is a frozen dataclass of
primitives so arrival configurations participate in the persistent
result-cache key (:func:`repro.parallel.cache.canonical`), and every
draw goes through the caller's seeded generator, keeping simulations
bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError

__all__ = [
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "TraceArrivals",
    "make_arrivals",
]


@dataclass(frozen=True)
class PoissonArrivals:
    """Memoryless arrivals at a constant offered rate.

    Attributes:
        rate_qps: Mean arrival rate (requests per second).
    """

    rate_qps: float

    def __post_init__(self) -> None:
        if self.rate_qps <= 0:
            raise ConfigError(
                f"rate_qps must be positive ({self.rate_qps})"
            )

    @property
    def mean_rate_qps(self) -> float:
        return self.rate_qps

    def times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """``n`` arrival timestamps starting at t=0 (exclusive)."""
        if n < 1:
            raise ConfigError(f"need at least one arrival ({n})")
        return np.cumsum(rng.exponential(1.0 / self.rate_qps, n))


@dataclass(frozen=True)
class BurstyArrivals:
    """Two-state Markov-modulated Poisson process (MMPP-2).

    The process alternates between a *base* state and a *burst* state
    with exponentially distributed dwell times; within each state
    arrivals are Poisson at that state's rate.  The mean rate is the
    dwell-weighted average, so a ``burst_factor`` of 4 with equal dwell
    shares keeps the same offered load as Poisson while concentrating
    it into bursts (higher inter-arrival CV, fatter latency tails).

    Attributes:
        rate_qps: Dwell-weighted mean rate.
        burst_factor: Burst-state rate multiplier over the base state.
        burst_share: Fraction of time spent in the burst state.
        mean_dwell_s: Mean length of one burst period.
    """

    rate_qps: float
    burst_factor: float = 4.0
    burst_share: float = 0.2
    mean_dwell_s: float = 0.05

    def __post_init__(self) -> None:
        if self.rate_qps <= 0:
            raise ConfigError(f"rate_qps must be positive ({self.rate_qps})")
        if self.burst_factor < 1:
            raise ConfigError(
                f"burst_factor must be >= 1 ({self.burst_factor})"
            )
        if not 0 < self.burst_share < 1:
            raise ConfigError(
                f"burst_share must be in (0, 1) ({self.burst_share})"
            )
        if self.mean_dwell_s <= 0:
            raise ConfigError(
                f"mean_dwell_s must be positive ({self.mean_dwell_s})"
            )

    @property
    def mean_rate_qps(self) -> float:
        return self.rate_qps

    def _state_rates(self) -> tuple[float, float]:
        """(base_rate, burst_rate) preserving the requested mean."""
        # mean = base*(1-share) + base*factor*share
        base = self.rate_qps / (
            (1 - self.burst_share) + self.burst_factor * self.burst_share
        )
        return base, base * self.burst_factor

    def times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 1:
            raise ConfigError(f"need at least one arrival ({n})")
        base_rate, burst_rate = self._state_rates()
        base_dwell = (
            self.mean_dwell_s * (1 - self.burst_share) / self.burst_share
        )
        out = np.empty(n)
        t = 0.0
        in_burst = rng.random() < self.burst_share
        state_end = t + rng.exponential(
            self.mean_dwell_s if in_burst else base_dwell
        )
        produced = 0
        while produced < n:
            rate = burst_rate if in_burst else base_rate
            dt = rng.exponential(1.0 / rate)
            if t + dt <= state_end:
                # Poisson is memoryless: the draw is valid inside the
                # current state's remaining dwell.
                t += dt
                out[produced] = t
                produced += 1
            else:
                t = state_end
                in_burst = not in_burst
                state_end = t + rng.exponential(
                    self.mean_dwell_s if in_burst else base_dwell
                )
        return out


@dataclass(frozen=True)
class DiurnalArrivals:
    """Day/night traffic: a sinusoidally modulated Poisson process.

    The instantaneous rate swings through one full cycle per
    ``period_s``::

        lambda(t) = rate_qps * (1 - amplitude * cos(2 pi t / period_s))

    starting at the *trough* (night) so a simulation opens on a quiet
    fleet, ramps through the morning to the midday peak at
    ``period_s / 2``, and falls back — the traffic shape that drives an
    autoscaler through grow-and-shrink cycles.  Arrivals are generated
    by Lewis-Shedler thinning: candidate arrivals at the peak rate,
    each accepted with probability ``lambda(t) / lambda_max``, which
    keeps the process exact and bit-reproducible for a seeded
    generator.  The dwell-weighted mean rate is ``rate_qps``.

    Attributes:
        rate_qps: Mean arrival rate over a full cycle.
        period_s: Length of one day/night cycle in simulated seconds.
        amplitude: Peak-to-mean swing in [0, 1]: the peak rate is
            ``(1 + amplitude) * rate_qps`` and the trough
            ``(1 - amplitude) * rate_qps`` (1 = the night goes fully
            quiet; 0 = plain Poisson).
    """

    rate_qps: float
    period_s: float = 60.0
    amplitude: float = 0.8

    def __post_init__(self) -> None:
        if self.rate_qps <= 0:
            raise ConfigError(
                f"rate_qps must be positive ({self.rate_qps})"
            )
        if self.period_s <= 0:
            raise ConfigError(
                f"period_s must be positive ({self.period_s})"
            )
        if not 0.0 <= self.amplitude <= 1.0:
            raise ConfigError(
                f"amplitude must be in [0, 1] ({self.amplitude})"
            )

    @property
    def mean_rate_qps(self) -> float:
        return self.rate_qps

    def rate_at(self, t: float) -> float:
        """The instantaneous offered rate at simulation time ``t``."""
        omega = 2.0 * np.pi / self.period_s
        return self.rate_qps * (
            1.0 - self.amplitude * np.cos(omega * t)
        )

    def times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 1:
            raise ConfigError(f"need at least one arrival ({n})")
        peak = self.rate_qps * (1.0 + self.amplitude)
        omega = 2.0 * np.pi / self.period_s
        rate = self.rate_qps
        amplitude = self.amplitude
        cos = np.cos
        out = np.empty(n)
        t = 0.0
        produced = 0
        while produced < n:
            t += rng.exponential(1.0 / peak)
            lam = rate * (1.0 - amplitude * cos(omega * t))
            if rng.random() * peak <= lam:
                out[produced] = t
                produced += 1
        return out


@dataclass(frozen=True)
class TraceArrivals:
    """Replay of an explicit timestamp trace.

    Attributes:
        timestamps_s: Arrival times in seconds, non-decreasing from 0.
    """

    timestamps_s: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.timestamps_s:
            raise ConfigError("trace must contain at least one timestamp")
        arr = np.asarray(self.timestamps_s, dtype=np.float64)
        if np.any(arr < 0) or np.any(np.diff(arr) < 0):
            raise ConfigError(
                "trace timestamps must be non-negative and sorted"
            )

    @property
    def mean_rate_qps(self) -> float:
        span = self.timestamps_s[-1]
        if span <= 0:
            return float(len(self.timestamps_s))
        return len(self.timestamps_s) / span

    def times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """The first ``n`` trace entries (the trace bounds ``n``)."""
        if not 1 <= n <= len(self.timestamps_s):
            raise ConfigError(
                f"trace has {len(self.timestamps_s)} arrivals, "
                f"requested {n}"
            )
        return np.asarray(self.timestamps_s[:n], dtype=np.float64)


def make_arrivals(
    kind: str,
    rate_qps: float,
    burst_factor: float = 4.0,
    trace: tuple[float, ...] | None = None,
    diurnal_period_s: float = 60.0,
    diurnal_amplitude: float = 0.8,
):
    """Arrival-process factory keyed by CLI name.

    Args:
        kind: ``"poisson"``, ``"bursty"``, ``"diurnal"``, or
            ``"trace"``.
        rate_qps: Offered rate (ignored for traces).
        burst_factor: Burst multiplier for the bursty process.
        trace: Timestamps for ``kind="trace"``.
        diurnal_period_s: Day/night cycle length for ``"diurnal"``.
        diurnal_amplitude: Peak-to-mean swing for ``"diurnal"``.
    """
    if kind == "poisson":
        return PoissonArrivals(rate_qps)
    if kind == "bursty":
        return BurstyArrivals(rate_qps, burst_factor=burst_factor)
    if kind == "diurnal":
        return DiurnalArrivals(
            rate_qps,
            period_s=diurnal_period_s,
            amplitude=diurnal_amplitude,
        )
    if kind == "trace":
        if trace is None:
            raise ConfigError("trace arrivals need timestamps")
        return TraceArrivals(tuple(float(t) for t in trace))
    raise ConfigError(
        f"unknown arrival process {kind!r} "
        "(known: poisson, bursty, diurnal, trace)"
    )
