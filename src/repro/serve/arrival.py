"""Request arrival processes for the serving simulator.

Four traffic shapes cover the deployment stories the ROADMAP cares
about: steady user traffic (Poisson), flash-crowd burstiness (a
two-state Markov-modulated Poisson process), day/night load swings (a
sinusoidally modulated Poisson process that exercises autoscalers), and
replayed production traces.  Every process is a frozen dataclass of
primitives so arrival configurations participate in the persistent
result-cache key (:func:`repro.parallel.cache.canonical`), and every
draw goes through the caller's seeded generator, keeping simulations
bit-reproducible.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError

__all__ = [
    "PoissonArrivals",
    "iter_arrival_times",
    "BurstyArrivals",
    "DiurnalArrivals",
    "TraceArrivals",
    "SharedModulator",
    "make_arrivals",
    "thin_nhpp",
    "capture_rng_state",
    "restore_rng",
]


def capture_rng_state(rng: np.random.Generator) -> dict:
    """The generator's exact bit-generator state, as plain picklable
    values (nested dicts of ints for PCG64) — what checkpoint payloads
    carry so arrival/sampling substreams resume at the exact position
    they paused at."""
    return rng.bit_generator.state


def restore_rng(state: dict) -> np.random.Generator:
    """A fresh generator positioned exactly at a captured state."""
    bit_generator = getattr(np.random, state["bit_generator"])()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


def thin_nhpp(
    n: int,
    peak_rate: float,
    rate_at,
    rng: np.random.Generator,
) -> np.ndarray:
    """Lewis-Shedler thinning: ``n`` arrivals of a non-homogeneous
    Poisson process with instantaneous rate ``rate_at(t)``.

    Candidates arrive Poisson at ``peak_rate`` (which must dominate
    ``rate_at`` everywhere) and each is accepted with probability
    ``rate_at(t) / peak_rate`` — exact, and bit-reproducible for a
    seeded generator.  Candidate time always advances, so the loop
    cannot stall even through a zero-rate stretch; a non-positive rate
    is rejected outright (``rng.random() * peak <= 0`` would otherwise
    accept the measure-zero draw ``random() == 0.0``, placing an
    arrival at an instant of zero intensity).
    """
    if n < 1:
        raise ConfigError(f"need at least one arrival ({n})")
    if peak_rate <= 0:
        raise ConfigError(
            f"peak_rate must be positive ({peak_rate})"
        )
    out = np.empty(n)
    t = 0.0
    produced = 0
    while produced < n:
        t += rng.exponential(1.0 / peak_rate)
        lam = rate_at(t)
        if lam > 0.0 and rng.random() * peak_rate <= lam:
            out[produced] = t
            produced += 1
    return out


@dataclass(frozen=True)
class PoissonArrivals:
    """Memoryless arrivals at a constant offered rate.

    Attributes:
        rate_qps: Mean arrival rate (requests per second).
    """

    rate_qps: float

    def __post_init__(self) -> None:
        if self.rate_qps <= 0:
            raise ConfigError(
                f"rate_qps must be positive ({self.rate_qps})"
            )

    @property
    def mean_rate_qps(self) -> float:
        return self.rate_qps

    def times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """``n`` arrival timestamps starting at t=0 (exclusive)."""
        if n < 1:
            raise ConfigError(f"need at least one arrival ({n})")
        return np.cumsum(rng.exponential(1.0 / self.rate_qps, n))

    def iter_times(
        self, n: int, rng: np.random.Generator, chunk: int
    ):
        """Yield the same ``n`` timestamps as :meth:`times`, in chunks.

        Bit-identical to the one-shot array: ``rng.exponential`` draws
        chunk-by-chunk consume the bit stream exactly like one big
        draw, and ``np.cumsum`` is a sequential left fold, so adding
        the running carry to each chunk's first gap reproduces the
        full cumulative sum float-for-float.  Memory is O(chunk).
        """
        if n < 1:
            raise ConfigError(f"need at least one arrival ({n})")
        scale = 1.0 / self.rate_qps
        carry = 0.0
        produced = 0
        while produced < n:
            m = min(chunk, n - produced)
            gaps = rng.exponential(scale, m)
            gaps[0] += carry
            times = np.cumsum(gaps)
            carry = float(times[-1])
            produced += m
            yield times


@dataclass(frozen=True)
class BurstyArrivals:
    """Two-state Markov-modulated Poisson process (MMPP-2).

    The process alternates between a *base* state and a *burst* state
    with exponentially distributed dwell times; within each state
    arrivals are Poisson at that state's rate.  The mean rate is the
    dwell-weighted average, so a ``burst_factor`` of 4 with equal dwell
    shares keeps the same offered load as Poisson while concentrating
    it into bursts (higher inter-arrival CV, fatter latency tails).

    Attributes:
        rate_qps: Dwell-weighted mean rate.
        burst_factor: Burst-state rate multiplier over the base state.
        burst_share: Fraction of time spent in the burst state.
        mean_dwell_s: Mean length of one burst period.
    """

    rate_qps: float
    burst_factor: float = 4.0
    burst_share: float = 0.2
    mean_dwell_s: float = 0.05

    def __post_init__(self) -> None:
        if self.rate_qps <= 0:
            raise ConfigError(f"rate_qps must be positive ({self.rate_qps})")
        if self.burst_factor < 1:
            raise ConfigError(
                f"burst_factor must be >= 1 ({self.burst_factor})"
            )
        if not 0 < self.burst_share < 1:
            raise ConfigError(
                f"burst_share must be in (0, 1) ({self.burst_share})"
            )
        if self.mean_dwell_s <= 0:
            raise ConfigError(
                f"mean_dwell_s must be positive ({self.mean_dwell_s})"
            )

    @property
    def mean_rate_qps(self) -> float:
        return self.rate_qps

    def _state_rates(self) -> tuple[float, float]:
        """(base_rate, burst_rate) preserving the requested mean."""
        # mean = base*(1-share) + base*factor*share
        base = self.rate_qps / (
            (1 - self.burst_share) + self.burst_factor * self.burst_share
        )
        return base, base * self.burst_factor

    def times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 1:
            raise ConfigError(f"need at least one arrival ({n})")
        base_rate, burst_rate = self._state_rates()
        base_dwell = (
            self.mean_dwell_s * (1 - self.burst_share) / self.burst_share
        )
        out = np.empty(n)
        t = 0.0
        in_burst = rng.random() < self.burst_share
        state_end = t + rng.exponential(
            self.mean_dwell_s if in_burst else base_dwell
        )
        produced = 0
        while produced < n:
            rate = burst_rate if in_burst else base_rate
            dt = rng.exponential(1.0 / rate)
            if t + dt <= state_end:
                # Poisson is memoryless: the draw is valid inside the
                # current state's remaining dwell.
                t += dt
                out[produced] = t
                produced += 1
            else:
                t = state_end
                in_burst = not in_burst
                state_end = t + rng.exponential(
                    self.mean_dwell_s if in_burst else base_dwell
                )
        return out


@dataclass(frozen=True)
class DiurnalArrivals:
    """Day/night traffic: a sinusoidally modulated Poisson process.

    The instantaneous rate swings through one full cycle per
    ``period_s``::

        lambda(t) = rate_qps * (1 - amplitude * cos(2 pi t / period_s))

    starting at the *trough* (night) so a simulation opens on a quiet
    fleet, ramps through the morning to the midday peak at
    ``period_s / 2``, and falls back — the traffic shape that drives an
    autoscaler through grow-and-shrink cycles.  Arrivals are generated
    by Lewis-Shedler thinning: candidate arrivals at the peak rate,
    each accepted with probability ``lambda(t) / lambda_max``, which
    keeps the process exact and bit-reproducible for a seeded
    generator.  The dwell-weighted mean rate is ``rate_qps``.

    Attributes:
        rate_qps: Mean arrival rate over a full cycle.
        period_s: Length of one day/night cycle in simulated seconds.
        amplitude: Peak-to-mean swing in [0, 1): the peak rate is
            ``(1 + amplitude) * rate_qps`` and the trough
            ``(1 - amplitude) * rate_qps`` (0 = plain Poisson).
            Exactly 1.0 is rejected: it drives the trough rate to
            exactly zero, where the thinning acceptance test
            ``u * peak <= 0`` could still fire on the measure-zero
            draw ``u == 0.0`` — an arrival at an instant of zero
            intensity.  Model a near-dead night with 0.999 instead.
    """

    rate_qps: float
    period_s: float = 60.0
    amplitude: float = 0.8

    def __post_init__(self) -> None:
        if self.rate_qps <= 0:
            raise ConfigError(
                f"rate_qps must be positive ({self.rate_qps})"
            )
        if self.period_s <= 0:
            raise ConfigError(
                f"period_s must be positive ({self.period_s})"
            )
        if not 0.0 <= self.amplitude < 1.0:
            raise ConfigError(
                f"amplitude must be in [0, 1) ({self.amplitude}); "
                "amplitude 1.0 drives the trough rate to exactly 0 — "
                "use 0.999 for a near-quiet night"
            )

    @property
    def mean_rate_qps(self) -> float:
        return self.rate_qps

    def rate_at(self, t: float) -> float:
        """The instantaneous offered rate at simulation time ``t``."""
        omega = 2.0 * np.pi / self.period_s
        return self.rate_qps * (
            1.0 - self.amplitude * np.cos(omega * t)
        )

    def times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        peak = self.rate_qps * (1.0 + self.amplitude)
        return thin_nhpp(n, peak, self.rate_at, rng)


class _BurstPath:
    """One sampled trajectory of the MMPP-2 modulating state.

    Dwell segments are drawn lazily, strictly in time order, from the
    path's own generator — so the trajectory is a pure function of that
    generator's seed no matter which fleet queries it first, or how far
    apart the fleets' candidate clocks run.
    """

    __slots__ = (
        "_rng", "_base_factor", "_burst_factor", "_mean_dwell",
        "_base_dwell", "_ends", "_factors", "_horizon",
    )

    def __init__(
        self,
        rng: np.random.Generator,
        burst_factor: float,
        burst_share: float,
        mean_dwell_s: float,
    ) -> None:
        # Factors preserve a dwell-weighted mean of 1 (same algebra as
        # BurstyArrivals._state_rates with rate_qps = 1).
        base = 1.0 / (
            (1.0 - burst_share) + burst_factor * burst_share
        )
        self._base_factor = base
        self._burst_factor = base * burst_factor
        self._mean_dwell = mean_dwell_s
        self._base_dwell = mean_dwell_s * (1.0 - burst_share) / burst_share
        self._rng = rng
        in_burst = rng.random() < burst_share
        first_end = rng.exponential(
            mean_dwell_s if in_burst else self._base_dwell
        )
        self._ends = [first_end]
        self._factors = [
            self._burst_factor if in_burst else self._base_factor
        ]
        self._horizon = first_end

    def _extend_to(self, t: float) -> None:
        while self._horizon <= t:
            in_burst = self._factors[-1] == self._base_factor
            dwell = self._rng.exponential(
                self._mean_dwell if in_burst else self._base_dwell
            )
            self._horizon += dwell
            self._ends.append(self._horizon)
            self._factors.append(
                self._burst_factor if in_burst else self._base_factor
            )

    def factor(self, t: float) -> float:
        """The modulating factor at absolute time ``t`` (t >= 0)."""
        self._extend_to(t)
        # Queries advance nearly monotonically within one fleet but
        # restart at ~0 for the next fleet, so bisect instead of
        # remembering a cursor.
        return self._factors[bisect_right(self._ends, t)]


@dataclass(frozen=True)
class SharedModulator:
    """The latent rate factor a group of correlated fleets shares.

    Multi-fleet traffic is correlated through one modulating factor
    ``m(t)`` with dwell-weighted mean 1: fleet ``k`` sees instantaneous
    rate ``rate_k * m(t)``, realized by Lewis-Shedler thinning on an
    *independent substream* of the scenario's master seed — so a
    regional diurnal swing or burst hits every fleet at the same
    simulated instant while the fleets' arrival jitter stays
    independent.

    Attributes:
        kind: ``"diurnal"`` (deterministic day/night sinusoid, trough
            at t=0) or ``"burst"`` (one sampled MMPP-2 state path).
        period_s / amplitude: Diurnal cycle length and swing
            (amplitude in [0, 1), as in :class:`DiurnalArrivals`).
        burst_factor / burst_share / mean_dwell_s: MMPP-2 parameters
            (as in :class:`BurstyArrivals`).
    """

    kind: str = "diurnal"
    period_s: float = 60.0
    amplitude: float = 0.8
    burst_factor: float = 4.0
    burst_share: float = 0.2
    mean_dwell_s: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in ("diurnal", "burst"):
            raise ConfigError(
                f"unknown modulator kind {self.kind!r} "
                "(known: diurnal, burst)"
            )
        if self.kind == "diurnal":
            # Reuse the diurnal validation (incl. the amplitude==1.0
            # zero-trough rejection) without generating anything.
            DiurnalArrivals(
                1.0, period_s=self.period_s, amplitude=self.amplitude
            )
        else:
            BurstyArrivals(
                1.0,
                burst_factor=self.burst_factor,
                burst_share=self.burst_share,
                mean_dwell_s=self.mean_dwell_s,
            )

    def peak_factor(self) -> float:
        """An upper bound on ``m(t)``, for the thinning candidate rate."""
        if self.kind == "diurnal":
            return 1.0 + self.amplitude
        base = 1.0 / (
            (1.0 - self.burst_share)
            + self.burst_factor * self.burst_share
        )
        return base * self.burst_factor

    def build_path(self, rng: np.random.Generator):
        """Materialize one trajectory: a callable ``m(t)``.

        Diurnal modulation is a deterministic sinusoid (``rng`` is
        untouched); the burst path consumes ``rng`` — pass a substream
        reserved for the latent state so fleet substreams stay
        independent of it.
        """
        if self.kind == "diurnal":
            omega = 2.0 * np.pi / self.period_s
            amplitude = self.amplitude

            def factor(t: float) -> float:
                return 1.0 - amplitude * np.cos(omega * t)

            return factor
        return _BurstPath(
            rng,
            self.burst_factor,
            self.burst_share,
            self.mean_dwell_s,
        ).factor

    def fleet_times(
        self,
        n: int,
        rate_qps: float,
        path,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """``n`` arrivals for one fleet at mean rate ``rate_qps``,
        thinned against the shared path on the fleet's own substream."""
        if rate_qps <= 0:
            raise ConfigError(
                f"rate_qps must be positive ({rate_qps})"
            )
        peak = rate_qps * self.peak_factor()

        def rate_at(t: float) -> float:
            return rate_qps * path(t)

        return thin_nhpp(n, peak, rate_at, rng)


@dataclass(frozen=True)
class TraceArrivals:
    """Replay of an explicit timestamp trace.

    Attributes:
        timestamps_s: Arrival times in seconds, non-decreasing from 0.
    """

    timestamps_s: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.timestamps_s:
            raise ConfigError("trace must contain at least one timestamp")
        arr = np.asarray(self.timestamps_s, dtype=np.float64)
        if np.any(arr < 0) or np.any(np.diff(arr) < 0):
            raise ConfigError(
                "trace timestamps must be non-negative and sorted"
            )

    @property
    def mean_rate_qps(self) -> float:
        span = self.timestamps_s[-1]
        if span <= 0:
            return float(len(self.timestamps_s))
        return len(self.timestamps_s) / span

    def times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """The first ``n`` trace entries (the trace bounds ``n``)."""
        if not 1 <= n <= len(self.timestamps_s):
            raise ConfigError(
                f"trace has {len(self.timestamps_s)} arrivals, "
                f"requested {n}"
            )
        return np.asarray(self.timestamps_s[:n], dtype=np.float64)


def make_arrivals(
    kind: str,
    rate_qps: float,
    burst_factor: float = 4.0,
    trace: tuple[float, ...] | None = None,
    diurnal_period_s: float = 60.0,
    diurnal_amplitude: float = 0.8,
):
    """Arrival-process factory keyed by CLI name.

    Args:
        kind: ``"poisson"``, ``"bursty"``, ``"diurnal"``, or
            ``"trace"``.
        rate_qps: Offered rate (ignored for traces).
        burst_factor: Burst multiplier for the bursty process.
        trace: Timestamps for ``kind="trace"``.
        diurnal_period_s: Day/night cycle length for ``"diurnal"``.
        diurnal_amplitude: Peak-to-mean swing for ``"diurnal"``.
    """
    if kind == "poisson":
        return PoissonArrivals(rate_qps)
    if kind == "bursty":
        return BurstyArrivals(rate_qps, burst_factor=burst_factor)
    if kind == "diurnal":
        return DiurnalArrivals(
            rate_qps,
            period_s=diurnal_period_s,
            amplitude=diurnal_amplitude,
        )
    if kind == "trace":
        if trace is None:
            raise ConfigError("trace arrivals need timestamps")
        return TraceArrivals(tuple(float(t) for t in trace))
    raise ConfigError(
        f"unknown arrival process {kind!r} "
        "(known: poisson, bursty, diurnal, trace)"
    )


def iter_arrival_times(arrivals, n: int, rng, chunk: int):
    """Chunked view of an arrival process for streaming consumers.

    Processes that can generate incrementally (``iter_times``) do so
    with O(chunk) memory; the rest materialize once via ``times`` and
    are yielded in slices, so callers get a uniform chunk iterator
    either way.  Currently only Poisson streams natively — the MMPP
    and diurnal thinning constructions need the full horizon.
    """
    native = getattr(arrivals, "iter_times", None)
    if native is not None:
        yield from native(n, rng, chunk)
        return
    times = arrivals.times(n, rng)
    for s in range(0, len(times), chunk):
        yield times[s : s + chunk]
