"""Streaming quantile sketches for constant-memory latency statistics.

Exact percentile reporting retains every latency — O(n) floats, which
is what caps the PR-4 engine at ~10^5 requests per report.  This module
provides a merging t-digest (:class:`TDigest`) and the small aggregate
bundle the reports need (:class:`StreamingLatencyStats`): mean, max,
and p50/p95/p99 from O(delta) centroids regardless of stream length,
fed chunk-at-a-time by the engine's streaming fast path.

Invariants:

* **Bounded state.**  A digest never holds more than ``~2 * delta``
  centroids plus one fill buffer (``_BUFFER`` values); total memory is
  independent of how many values were added.
* **Exactness at the edges.**  ``min`` and ``max`` are tracked exactly,
  and a digest that has seen fewer than ``_BUFFER`` values answers
  quantiles *exactly* (the buffer is still intact, so it sorts and
  interpolates like ``np.percentile(..., method="linear")``).  Sketch
  mode therefore only approximates genuinely large runs.
* **Documented accuracy.**  For the latency distributions the serving
  simulations produce (unimodal, finite support), p50/p95/p99 land
  within **1% relative error** of the exact quantile at the default
  ``delta``; ``tests/serve/test_sketch.py`` property-tests this bound
  across Poisson / MMPP-bursty / diurnal traffic and synthetic
  heavy-tailed samples.

The scale function is the t-digest ``k1`` arcsine rule, which spends
centroid resolution at both tails — that is where p95/p99 live, and
where a naive equal-weight histogram sketch (or P²'s five markers)
loses precision.  Centroid merging is fully vectorized: values are
bucketed by ``floor(k1(q))`` of their cumulative mid-weight quantile
and aggregated with ``np.add.reduceat``, so feeding the digest costs
O(chunk log chunk) with no per-value Python work.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TDigest", "StreamingLatencyStats"]

#: Default compression: ~delta centroids; 1% relative error at p99 on
#: the distributions tested, ~16 KiB of state.
_DELTA = 500

#: Unmerged values buffered before a (vectorized) compression pass.
_BUFFER = 4096


class TDigest:
    """A merging t-digest over a stream of float64 values.

    Feed with :meth:`add` (array chunks), read with :meth:`quantile`.
    State is two centroid arrays (means, weights) bounded by the
    compression parameter ``delta``, one fill buffer, and exact
    min/max/count — flat in stream length.
    """

    __slots__ = (
        "delta",
        "count",
        "min",
        "max",
        "_means",
        "_weights",
        "_buffer",
    )

    def __init__(self, delta: int = _DELTA) -> None:
        if delta < 10:
            raise ValueError(f"delta must be >= 10 ({delta})")
        self.delta = delta
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")
        self._means = np.empty(0, dtype=np.float64)
        self._weights = np.empty(0, dtype=np.float64)
        self._buffer: list[np.ndarray] = []

    def add(self, values: np.ndarray) -> None:
        """Absorb a chunk of values (any shape; flattened)."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        self.count += values.size
        lo = float(values.min())
        hi = float(values.max())
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi
        self._buffer.append(values)
        if sum(chunk.size for chunk in self._buffer) >= _BUFFER:
            self._compress()

    def _compress(self) -> None:
        """Merge buffered values into the centroid set (vectorized)."""
        if not self._buffer and self._weights.size:
            return
        parts_m = [self._means] + self._buffer
        parts_w = [self._weights] + [
            np.ones(chunk.size, dtype=np.float64)
            for chunk in self._buffer
        ]
        self._buffer = []
        means = np.concatenate(parts_m)
        weights = np.concatenate(parts_w)
        if means.size == 0:
            return
        order = np.argsort(means, kind="stable")
        means = means[order]
        weights = weights[order]
        total = weights.sum()
        # Mid-weight cumulative quantile of each point, mapped through
        # the k1 arcsine scale; equal floor(k1) => same centroid.
        cum = np.cumsum(weights)
        q = (cum - 0.5 * weights) / total
        k = (self.delta / (2.0 * np.pi)) * np.arcsin(
            np.clip(2.0 * q - 1.0, -1.0, 1.0)
        )
        buckets = np.floor(k).astype(np.int64)
        heads = np.empty(means.size, dtype=bool)
        heads[0] = True
        np.not_equal(buckets[1:], buckets[:-1], out=heads[1:])
        starts = np.flatnonzero(heads)
        wsum = np.add.reduceat(weights, starts)
        msum = np.add.reduceat(means * weights, starts)
        self._means = msum / wsum
        self._weights = wsum

    def quantile(self, q: float) -> float:
        """The value at cumulative fraction ``q`` in ``[0, 1]``.

        Interpolates linearly between centroid means (anchored at the
        exact min/max); exact while the stream still fits the buffer.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1] ({q})")
        if self.count == 0:
            raise ValueError("quantile of an empty digest")
        if self._buffer:
            if self._weights.size == 0:
                # Small stream: the buffer holds everything — answer
                # exactly (numpy's default linear interpolation).
                values = np.concatenate(self._buffer)
                if values.size < _BUFFER:
                    return float(np.percentile(values, q * 100.0))
            self._compress()
        means = self._means
        weights = self._weights
        if means.size == 1:
            return float(means[0])
        total = weights.sum()
        target = q * total
        mid = np.cumsum(weights) - 0.5 * weights
        j = int(np.searchsorted(mid, target))
        if j == 0:
            span = mid[0]
            if span <= 0.0:
                return self.min
            frac = target / span
            return float(self.min + frac * (means[0] - self.min))
        if j == means.size:
            span = total - mid[-1]
            if span <= 0.0:
                return self.max
            frac = (target - mid[-1]) / span
            return float(means[-1] + frac * (self.max - means[-1]))
        span = mid[j] - mid[j - 1]
        frac = (target - mid[j - 1]) / span if span > 0.0 else 0.0
        return float(means[j - 1] + frac * (means[j] - means[j - 1]))


class StreamingLatencyStats:
    """The latency aggregates a :class:`ServingReport` needs, streamed.

    Bundles a :class:`TDigest` with exact running mean/max/count, so a
    report can fill ``latency_mean_s`` / ``latency_max_s`` exactly and
    the percentile fields from the sketch.
    """

    __slots__ = ("digest", "count", "total")

    def __init__(self, delta: int = _DELTA) -> None:
        self.digest = TDigest(delta)
        self.count = 0
        self.total = 0.0

    def add(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        self.count += values.size
        self.total += float(values.sum())
        self.digest.add(values)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def max(self) -> float:
        return self.digest.max if self.count else 0.0

    def quantile(self, q: float) -> float:
        return self.digest.quantile(q)
