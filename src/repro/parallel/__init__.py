"""Parallel execution subsystem: process fan-out plus persistent caching.

Three pieces, layered:

* :mod:`repro.parallel.cache` — content-keyed, two-tier (memory + disk)
  result cache, so identical simulation requests are computed once and
  reused across experiments, benchmarks, and CLI runs;
* :mod:`repro.parallel.executor` — order-preserving process-pool
  executor with a deterministic serial fallback (``jobs=1``);
* :mod:`repro.parallel.tasks` — the architecture-level design-space
  sweep built on both, with hardware-constraint pruning.

``repro.dse.explorer``, ``repro.eval.sweep``, and the CLI all route
their fan-out through this package.
"""

from .cache import CACHE_SCHEMA_VERSION, ResultCache, canonical, make_key
from .executor import ParallelExecutor, resolve_jobs
from .tasks import (
    DesignPointResult,
    design_point_sweep,
    is_feasible,
    simulate_design_point,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "ResultCache",
    "canonical",
    "make_key",
    "ParallelExecutor",
    "resolve_jobs",
    "DesignPointResult",
    "design_point_sweep",
    "is_feasible",
    "simulate_design_point",
]
