"""Process-pool executor for sweeps, DSE candidates, and experiments.

The executor is the single fan-out point of the reproduction: callers
hand it a picklable task function and a list of argument tuples, and it
either evaluates them serially (``jobs=1`` — the deterministic default,
used by the test suite for bit-for-bit comparisons) or across worker
processes.  Results always come back in submission order, so serial and
parallel execution are interchangeable.

:meth:`ParallelExecutor.map_cached` layers the persistent
:class:`~repro.parallel.cache.ResultCache` underneath the fan-out:
previously computed points are served from the cache, duplicate points
within one batch are computed once, and only genuine misses reach the
worker pool.
"""

from __future__ import annotations

import os
import sys
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from multiprocessing import get_context
from typing import Any, Callable, Sequence

from ..errors import ConfigError
from .cache import ResultCache, make_key

__all__ = ["ParallelExecutor", "resolve_jobs"]


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a job-count request.

    ``None`` or ``0`` selects one worker per available CPU; negative
    values are rejected.
    """
    if jobs is None or jobs == 0:
        try:
            return len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux fallback
            return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigError(f"jobs must be >= 0 or None (got {jobs})")
    return jobs


class ParallelExecutor:
    """Fans task batches out across worker processes.

    Args:
        jobs: Worker count; ``1`` runs in-process (serial, deterministic),
            ``None``/``0`` uses every available CPU.
        cache: Result cache consulted by :meth:`map_cached`.
        start_method: ``multiprocessing`` start method; defaults to
            ``"fork"`` on Linux (cheap) and the platform default
            elsewhere (macOS forks are unsafe under system frameworks).
    """

    def __init__(
        self,
        jobs: int | None = 1,
        cache: ResultCache | None = None,
        start_method: str | None = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        if start_method is None and sys.platform == "linux":
            # Cheap and safe on Linux; macOS deliberately defaults to
            # spawn (fork is unsafe under its system frameworks), so
            # everywhere else we keep the platform default.
            start_method = "fork"
        self.start_method = start_method
        self._pool: ProcessPoolExecutor | None = None

    @contextmanager
    def session(self):
        """Keep one worker pool open across multiple :meth:`map` calls.

        By default every :meth:`map` call builds and tears down its own
        pool; phased orchestration (e.g. the multi-fleet donor phase, a
        barrier, then the receiver phase) pays that startup twice for
        the same workers.  Inside a session, consecutive batches reuse
        the pool::

            with executor.session():
                first = executor.map(fn, donors)
                ...exchange at the barrier...
                second = executor.map(fn, receivers)

        Serial executors (``jobs=1``) pass through unchanged; nesting
        reuses the outer session's pool.
        """
        if self.jobs <= 1 or self._pool is not None:
            yield self
            return
        context = get_context(self.start_method)
        pool = ProcessPoolExecutor(
            max_workers=self.jobs, mp_context=context
        )
        self._pool = pool
        try:
            yield self
        finally:
            self._pool = None
            pool.shutdown()

    def map(
        self,
        fn: Callable[..., Any],
        argtuples: Sequence[tuple],
    ) -> list[Any]:
        """Evaluate ``fn(*args)`` for every tuple, in submission order.

        With more than one job, ``fn`` and every argument tuple must be
        picklable (define workers at module level).  Worker exceptions
        propagate to the caller.
        """
        argtuples = list(argtuples)
        if self.jobs <= 1 or len(argtuples) <= 1:
            return [fn(*args) for args in argtuples]
        if self._pool is not None:
            futures = [
                self._pool.submit(fn, *args) for args in argtuples
            ]
            return [future.result() for future in futures]
        workers = min(self.jobs, len(argtuples))
        context = get_context(self.start_method)
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            futures = [pool.submit(fn, *args) for args in argtuples]
            return [future.result() for future in futures]

    def map_cached(
        self,
        kind: str,
        fn: Callable[..., Any],
        argtuples: Sequence[tuple],
    ) -> list[Any]:
        """Like :meth:`map`, but routed through the result cache.

        Each argument tuple is keyed via
        :func:`~repro.parallel.cache.make_key`; cached points skip the
        pool entirely and duplicate points within the batch are computed
        once.  Without a cache this degrades to :meth:`map`.
        """
        argtuples = list(argtuples)
        if self.cache is None:
            return self.map(fn, argtuples)
        keys = [make_key(kind, args=args) for args in argtuples]
        pending: dict[str, tuple] = {}
        for key, args in zip(keys, argtuples):
            if self.cache.contains(key) or key in pending:
                self.cache.hits += 1
            else:
                self.cache.misses += 1
                pending[key] = args
        if pending:
            computed = self.map(fn, list(pending.values()))
            for key, value in zip(pending.keys(), computed):
                self.cache.put(key, value)
        return [self.cache.peek(key) for key in keys]
