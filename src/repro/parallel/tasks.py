"""Parallel design-point evaluation: the architecture-level DSE executor.

Where :mod:`repro.dse.explorer` sweeps tiling/dataflow choices with the
analytic access model, this module sweeps *complete architecture
configurations* (:class:`~repro.arch.params.ArchConfig` candidates)
through the full simulation stack — build a quantized MobileNet, run it
on the accelerator, summarize latency/throughput/energy — with
hardware-constraint pruning up front (the CHARM-style CDSE idiom:
reject candidates that break tiling divisibility or exceed PE/buffer
budgets before spending any simulation time).

The worker functions live at module level so the
:class:`~repro.parallel.executor.ParallelExecutor` can pickle them into
worker processes; the quantized workload each worker needs is built once
per process and memoized.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..arch.params import ArchConfig
from ..datasets.synthetic import SyntheticImageDataset
from ..errors import ConfigError
from ..nn.mobilenet import (
    DSCLayerSpec,
    build_mobilenet_v1,
    mobilenet_v1_specs,
)
from ..power.energy_model import PowerModel
from ..quant.qmodel import quantize_mobilenet
from ..sim.runner import AcceleratorRunner
from .cache import ResultCache
from .executor import ParallelExecutor

__all__ = [
    "DesignPointResult",
    "design_point_sweep",
    "is_feasible",
    "simulate_design_point",
]


@dataclass(frozen=True)
class DesignPointResult:
    """Summary of one simulated architecture candidate.

    Attributes:
        config: The evaluated architecture.
        width_multiplier: MobileNet width of the driving workload.
        resolution: Input spatial size of the driving workload.
        total_cycles: Network DSC latency in cycles.
        total_macs: Useful MACs over the network.
        throughput_gops: Sustained ops rate at the configured clock.
        mean_power_w: Mean per-layer power (default power model).
        energy_joules: Network energy for one inference.
    """

    config: ArchConfig
    width_multiplier: float
    resolution: int
    total_cycles: int
    total_macs: int
    throughput_gops: float
    mean_power_w: float
    energy_joules: float

    @property
    def latency_us(self) -> float:
        """Inference latency in microseconds."""
        return 1e6 * self.total_cycles / self.config.clock_hz

    @property
    def ee_tops_w(self) -> float:
        """Network-level energy efficiency (total ops / total energy)."""
        if self.energy_joules == 0:
            return 0.0
        return 2.0 * self.total_macs / self.energy_joules / 1e12


def is_feasible(
    config: ArchConfig,
    specs: list[DSCLayerSpec],
    max_total_pes: int | None = None,
    max_buffer_entries: int | None = None,
) -> bool:
    """Hardware-constraint check for one candidate.

    A candidate is feasible when every layer's channel counts tile
    exactly (the engines have no partial-group mode) and the PE count /
    on-chip buffer capacity stay within the optional budgets.
    """
    for spec in specs:
        if spec.in_channels % config.td or spec.out_channels % config.tk:
            return False
    if (
        max_total_pes is not None
        and config.total_macs_per_cycle > max_total_pes
    ):
        return False
    if max_buffer_entries is not None:
        onchip = (
            config.dwc_ifmap_buffer_entries
            + config.dwc_weight_buffer_entries
            + config.offline_buffer_entries
            + config.intermediate_buffer_entries
            + config.pwc_weight_buffer_entries
        )
        if onchip > max_buffer_entries:
            return False
    return True


@lru_cache(maxsize=4)
def _prepare_qmodel(width_multiplier: float, resolution: int, seed: int):
    """Build and quantize the driving workload (memoized per process)."""
    specs = mobilenet_v1_specs(
        input_size=resolution, width_multiplier=width_multiplier
    )
    model = build_mobilenet_v1(
        input_size=resolution, width_multiplier=width_multiplier, seed=seed
    )
    dataset = SyntheticImageDataset(
        num_samples=8, size=resolution, num_classes=10, seed=seed + 1
    )
    qmodel = quantize_mobilenet(model, specs, dataset.images)
    return qmodel, dataset.images


def simulate_design_point(
    config: ArchConfig,
    width_multiplier: float = 0.25,
    resolution: int = 32,
    seed: int = 7,
    fast: bool = False,
) -> DesignPointResult:
    """Simulate one architecture candidate end to end.

    Runs a seeded quantized MobileNet through the accelerator under
    ``config`` and condenses the per-layer statistics into a
    :class:`DesignPointResult`.  Deterministic for a given argument
    tuple, hence safe to cache and to fan out.
    """
    qmodel, images = _prepare_qmodel(width_multiplier, resolution, seed)
    runner = AcceleratorRunner(
        qmodel, config=config, verify=False, fast=fast
    )
    run = runner.run_network(images[0])
    model = PowerModel()
    powers = [model.layer_power(s).total_watts for s in run.layers]
    energy = sum(
        p * s.cycles / config.clock_hz
        for p, s in zip(powers, run.layers)
    )
    total_cycles = run.total_cycles
    total_macs = sum(s.total_macs for s in run.layers)
    throughput = (
        2.0 * total_macs * config.clock_hz / total_cycles / 1e9
        if total_cycles
        else 0.0
    )
    return DesignPointResult(
        config=config,
        width_multiplier=width_multiplier,
        resolution=resolution,
        total_cycles=total_cycles,
        total_macs=total_macs,
        throughput_gops=throughput,
        mean_power_w=sum(powers) / len(powers),
        energy_joules=energy,
    )


def design_point_sweep(
    configs: list[ArchConfig],
    width_multiplier: float = 0.25,
    resolution: int = 32,
    seed: int = 7,
    fast: bool = False,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
    max_total_pes: int | None = None,
    max_buffer_entries: int | None = None,
) -> list[DesignPointResult]:
    """Evaluate many architecture candidates, pruned then fanned out.

    Args:
        configs: Candidate architectures.
        width_multiplier / resolution / seed: Driving workload.
        fast: Use the analytic fast-latency mode per candidate.
        jobs: Worker processes (1 = serial, None/0 = all CPUs).
        cache: Persistent result cache; identical (config, workload)
            requests are computed once across runs.
        max_total_pes / max_buffer_entries: Optional hardware budgets for
            :func:`is_feasible` pruning.

    Returns:
        One result per *feasible* candidate, in input order.
    """
    if not configs:
        raise ConfigError("design_point_sweep needs at least one candidate")
    specs = mobilenet_v1_specs(
        input_size=resolution, width_multiplier=width_multiplier
    )
    feasible = [
        config
        for config in configs
        if is_feasible(config, specs, max_total_pes, max_buffer_entries)
    ]
    executor = ParallelExecutor(jobs=jobs, cache=cache)
    argtuples = [
        (config, width_multiplier, resolution, seed, fast)
        for config in feasible
    ]
    return executor.map_cached(
        "design_point", simulate_design_point, argtuples
    )
