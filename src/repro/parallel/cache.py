"""Persistent, keyed result cache for simulation requests.

Every expensive computation in the reproduction — a cycle-accurate layer
simulation, a sweep point, a DSE candidate, a prepared workload — is a
pure function of its inputs (architecture configuration, layer geometry,
quantization seed, ...).  This module derives a stable content key from
those inputs and memoizes results in two tiers: an in-process dictionary
and an optional on-disk store, so identical requests are computed once
and reused across experiments, benchmarks, and CLI runs (and across
processes, when a cache directory is shared).

Keys canonicalize dataclasses, enums, and NumPy arrays, so changing any
field of an :class:`~repro.arch.params.ArchConfig` or layer spec yields a
different key — invalidation on configuration change falls out of the
keying scheme.  ``CACHE_SCHEMA_VERSION`` is folded into every key; bump
it whenever the stored value format changes to orphan stale entries.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Callable

import numpy as np

from ..errors import ConfigError

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "ResultCache",
    "canonical",
    "extension_field",
    "make_key",
    "restore_extended",
]

#: Bump to invalidate every previously stored entry.
CACHE_SCHEMA_VERSION = 1


def extension_field(default: Any) -> Any:
    """A dataclass field added *after* results already live in caches.

    :func:`canonical` omits such a field while it still equals
    ``default``, so content keys derived before the field existed — and
    every warm :class:`ResultCache` entry stored under them — keep
    resolving.  Any non-default value participates in the key exactly
    like an ordinary field.  Use this for every field grown onto a
    cached request dataclass (scenarios, configs) whose default
    preserves the old behaviour.
    """
    return dataclasses.field(
        default=default, metadata={"cache_extension": True}
    )


def restore_extended(obj: Any, state: dict) -> None:
    """``__setstate__`` body for result dataclasses grown new fields.

    A warm cache can hold values pickled before a field existed;
    default unpickling would restore an instance missing the new
    attribute, crashing the first ``dataclasses.asdict`` (or any
    access) downstream.  Backfilling absent defaulted fields keeps
    those entries fully usable — the value-side counterpart of
    :func:`extension_field`'s key stability.  Works for frozen
    dataclasses: ``__dict__`` is written directly, bypassing the
    blocked ``__setattr__``.
    """
    for f in dataclasses.fields(obj):
        if f.name in state:
            continue
        if f.default is not dataclasses.MISSING:
            state[f.name] = f.default
        elif f.default_factory is not dataclasses.MISSING:
            state[f.name] = f.default_factory()
    obj.__dict__.update(state)


def canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-serializable canonical form.

    Supports the value types that appear in simulation requests:
    primitives, tuples/lists, dicts, dataclasses (by type name and
    field values), enums (by class and member name), and NumPy arrays
    and scalars (arrays by dtype/shape/content digest).
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return float(repr(obj)) if obj == obj else "nan"
    if isinstance(obj, enum.Enum):
        return [type(obj).__name__, obj.name]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {}
        for f in dataclasses.fields(obj):
            # Non-comparing fields (the report's engine execution
            # counters) are not part of the value: equal objects must
            # derive equal keys, whichever execution path produced
            # them.
            if not f.compare:
                continue
            value = getattr(obj, f.name)
            # Extension fields stay out of the key at their default so
            # pre-extension keys (and warm cache entries) survive.
            if (
                f.metadata.get("cache_extension")
                and f.default is not dataclasses.MISSING
                and value == f.default
            ):
                continue
            fields[f.name] = canonical(value)
        return [type(obj).__name__, fields]
    if isinstance(obj, np.ndarray):
        digest = hashlib.sha256(np.ascontiguousarray(obj).tobytes())
        return ["ndarray", str(obj.dtype), list(obj.shape), digest.hexdigest()]
    if isinstance(obj, np.generic):
        return canonical(obj.item())
    if isinstance(obj, (tuple, list)):
        return [canonical(item) for item in obj]
    if isinstance(obj, dict):
        return [
            [canonical(key), canonical(value)]
            for key, value in sorted(obj.items(), key=lambda kv: repr(kv[0]))
        ]
    raise TypeError(f"cannot build a cache key from {type(obj).__name__}")


def make_key(kind: str, /, **parts: Any) -> str:
    """Derive the cache key for one ``kind`` of request.

    Args:
        kind: Request family, e.g. ``"sweep_point"`` — distinct kinds
            never collide even for identical parameters.
        **parts: The request parameters (see :func:`canonical`).

    Returns:
        A hex digest string, stable across processes and sessions.
    """
    payload = json.dumps(
        [CACHE_SCHEMA_VERSION, kind, canonical(parts)],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


_MISSING = object()


class ResultCache:
    """Two-tier (memory + optional disk) store of computed results.

    Args:
        cache_dir: Directory for the persistent tier; ``None`` keeps the
            cache purely in-process.  Created on first write.

    Attributes:
        hits: Number of successful lookups.
        misses: Number of failed lookups.
    """

    def __init__(self, cache_dir: str | os.PathLike | None = None) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._memory: dict[str, Any] = {}
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / key[:2] / f"{key}.pkl"

    def lookup(self, key: str) -> Any:
        """Return the stored value for ``key``, or ``None`` if absent.

        Use :meth:`contains` to distinguish a stored ``None``.
        """
        value = self._lookup(key)
        if value is _MISSING:
            self.misses += 1
            return None
        self.hits += 1
        return value

    def _lookup(self, key: str) -> Any:
        if key in self._memory:
            return self._memory[key]
        if self.cache_dir is not None:
            path = self._path(key)
            try:
                with open(path, "rb") as handle:
                    value = pickle.load(handle)
            except FileNotFoundError:
                return _MISSING
            except Exception:
                # Any unreadable entry — truncated file, or a stale
                # pickle referencing since-renamed classes — is a miss
                # to recompute, never a crash.  Drop the bad file so the
                # recompute's atomic write repairs the entry for every
                # later reader.
                try:
                    os.unlink(path)
                except OSError:
                    pass
                return _MISSING
            self._memory[key] = value
            return value
        return _MISSING

    def contains(self, key: str) -> bool:
        """Whether ``key`` is resolvable from either tier."""
        return self._lookup(key) is not _MISSING

    def peek(self, key: str, default: Any = None) -> Any:
        """Like :meth:`lookup` but without touching the hit/miss counters."""
        value = self._lookup(key)
        return default if value is _MISSING else value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` in memory and (when configured) on disk.

        Disk writes go through a temporary file and an atomic rename, so
        concurrent writers on one filesystem never expose torn entries.
        """
        self._memory[key] = value
        if self.cache_dir is None:
            return
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".pkl"
            )
        except OSError as exc:
            raise ConfigError(
                f"cache directory {self.cache_dir} is not writable: {exc}"
            ) from exc
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def get_or_compute(self, key: str, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it on a miss."""
        value = self._lookup(key)
        if value is not _MISSING:
            self.hits += 1
            return value
        self.misses += 1
        value = compute()
        self.put(key, value)
        return value

    def invalidate(self, key: str) -> None:
        """Drop one entry from both tiers (missing keys are ignored)."""
        self._memory.pop(key, None)
        if self.cache_dir is not None:
            try:
                os.unlink(self._path(key))
            except OSError:
                pass

    def clear(self) -> None:
        """Drop every entry from both tiers.

        Also sweeps ``.tmp-*`` droppings a killed writer may have left
        behind (the atomic-rename path removes its temp file on every
        normal exit, but nothing survives ``SIGKILL``).
        """
        self._memory.clear()
        if self.cache_dir is not None and self.cache_dir.is_dir():
            for bucket in self.cache_dir.iterdir():
                if bucket.is_dir():
                    for entry in bucket.glob("*.pkl"):
                        try:
                            os.unlink(entry)
                        except OSError:
                            pass
                    for stale in bucket.glob(".tmp-*"):
                        try:
                            os.unlink(stale)
                        except OSError:
                            pass

    def __len__(self) -> int:
        return len(self._memory)
