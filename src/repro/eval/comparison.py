"""State-of-the-art comparison (paper Table III).

Combines the published numbers of the four prior works, this work's
measured/modelled numbers, and the technology normalization.  For the
prior works two normalizations are reported: the paper's own published
normalized values (scaled with the methodology of its reference [19]) and
the values from our transparent power-law :class:`ScalingModel`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..power.tech_scaling import ScalingModel, precision_ops_factor
from .paper_data import EDEA_TABLE3_ROW, SOTA_WORKS, SotaWork

__all__ = ["ComparisonRow", "build_comparison", "edea_speedups"]


@dataclass(frozen=True)
class ComparisonRow:
    """One row of the reproduced Table III."""

    name: str
    tech_nm: float
    precision_bits: int
    voltage_v: float
    pe_count: int
    throughput_gops: float
    energy_efficiency_tops_w: float
    area_efficiency_gops_mm2: float
    paper_normalized_ee: float
    paper_normalized_ae: float
    model_normalized_ee: float
    model_normalized_ae: float


def _normalize(work: SotaWork, model: ScalingModel) -> ComparisonRow:
    factor = precision_ops_factor(work.precision_bits)
    return ComparisonRow(
        name=work.name,
        tech_nm=work.tech_nm,
        precision_bits=work.precision_bits,
        voltage_v=work.voltage_v,
        pe_count=work.pe_count,
        throughput_gops=work.throughput_gops * factor,
        energy_efficiency_tops_w=work.energy_efficiency_tops_w * factor,
        area_efficiency_gops_mm2=work.area_efficiency_gops_mm2 * factor,
        paper_normalized_ee=work.normalized_ee_tops_w,
        paper_normalized_ae=work.normalized_ae_gops_mm2,
        model_normalized_ee=model.normalize_energy_efficiency(
            work.energy_efficiency_tops_w,
            work.tech_nm,
            work.voltage_v,
            work.precision_bits,
        ),
        model_normalized_ae=model.normalize_area_efficiency(
            work.area_efficiency_gops_mm2,
            work.tech_nm,
            work.precision_bits,
        ),
    )


def build_comparison(
    this_work_ee_tops_w: float | None = None,
    this_work_throughput_gops: float | None = None,
    this_work_area_mm2: float | None = None,
    scaling: ScalingModel | None = None,
) -> list[ComparisonRow]:
    """Assemble the Table III rows (prior works + this work).

    The "this work" entries default to the paper's published values; pass
    measured values from the simulator/power model to compare against the
    reproduction instead.
    """
    scaling = scaling if scaling is not None else ScalingModel()
    rows = [_normalize(work, scaling) for work in SOTA_WORKS]
    ee = (
        this_work_ee_tops_w
        if this_work_ee_tops_w is not None
        else EDEA_TABLE3_ROW["energy_efficiency_tops_w"]
    )
    tp = (
        this_work_throughput_gops
        if this_work_throughput_gops is not None
        else EDEA_TABLE3_ROW["throughput_gops"]
    )
    area = (
        this_work_area_mm2
        if this_work_area_mm2 is not None
        else EDEA_TABLE3_ROW["area_mm2"]
    )
    ae = tp / area
    rows.append(
        ComparisonRow(
            name="This work (EDEA)",
            tech_nm=EDEA_TABLE3_ROW["tech_nm"],
            precision_bits=EDEA_TABLE3_ROW["precision_bits"],
            voltage_v=EDEA_TABLE3_ROW["voltage_v"],
            pe_count=EDEA_TABLE3_ROW["pe_count"],
            throughput_gops=tp,
            energy_efficiency_tops_w=ee,
            area_efficiency_gops_mm2=ae,
            paper_normalized_ee=ee,
            paper_normalized_ae=ae,
            model_normalized_ee=ee,
            model_normalized_ae=ae,
        )
    )
    return rows


def edea_speedups(rows: list[ComparisonRow]) -> dict[str, dict[str, float]]:
    """EDEA's advantage factors over each prior work.

    Returns per-work factors for raw and paper-normalized energy
    efficiency and paper-normalized area efficiency — the numbers the
    paper quotes as "14.6X, 9.87X, 2.72X, 2.65X" (raw EE) and
    "1.74X, 3.11X, 1.37X, 2.65X" / "6.29X, 7.79X, 6.58X, 3.23X"
    (normalized EE / AE).
    """
    this = rows[-1]
    factors = {}
    for row in rows[:-1]:
        factors[row.name] = {
            "raw_ee": this.energy_efficiency_tops_w
            / row.energy_efficiency_tops_w,
            "normalized_ee": this.paper_normalized_ee
            / row.paper_normalized_ee,
            "normalized_ae": this.paper_normalized_ae
            / row.paper_normalized_ae,
        }
    return factors
