"""Evaluation harness: one reproducible experiment per paper figure/table,
shared workload preparation, and plain-text reporting."""

from .charts import bar_chart, grouped_bar_chart
from .comparison import ComparisonRow, build_comparison, edea_speedups
from .control import (
    render_control_report,
    render_control_sweep,
    report_to_dict,
)
from .efficiency import (
    EfficiencyReport,
    LayerEfficiency,
    build_efficiency_report,
    paper_profile_stats,
)
from .figures import (
    EXPERIMENTS,
    ExperimentResult,
    list_experiments,
    run_experiment,
)
from .layer_stats import LayerPerformance, layer_performance_series
from .paper_data import (
    EDEA_TABLE3_ROW,
    PAPER_FIG3_REDUCTION,
    PAPER_FIG11_LAYER12_ZEROS,
    PAPER_FIG12_EE_TOPS_W,
    PAPER_FIG13_THROUGHPUT_GOPS,
    PAPER_HEADLINE,
    SOTA_WORKS,
    SotaWork,
)
from .report import render_series, render_table
from .roofline import LayerRoofline, roofline_analysis
from .serving import (
    render_serving_report,
    render_serving_sweep,
    render_throughput_latency,
)
from .summary import ClaimCheck, render_report, reproduction_report
from .sweep import SweepPoint, width_resolution_sweep
from .workloads import ExperimentWorkload, clear_workload_cache, prepare_workload

__all__ = [
    "ExperimentResult",
    "EXPERIMENTS",
    "run_experiment",
    "list_experiments",
    "ExperimentWorkload",
    "prepare_workload",
    "clear_workload_cache",
    "LayerPerformance",
    "layer_performance_series",
    "EfficiencyReport",
    "LayerEfficiency",
    "build_efficiency_report",
    "paper_profile_stats",
    "ComparisonRow",
    "build_comparison",
    "edea_speedups",
    "render_table",
    "render_serving_report",
    "render_serving_sweep",
    "render_throughput_latency",
    "render_control_report",
    "render_control_sweep",
    "report_to_dict",
    "render_series",
    "SotaWork",
    "SOTA_WORKS",
    "EDEA_TABLE3_ROW",
    "PAPER_HEADLINE",
    "PAPER_FIG12_EE_TOPS_W",
    "PAPER_FIG13_THROUGHPUT_GOPS",
    "PAPER_FIG11_LAYER12_ZEROS",
    "PAPER_FIG3_REDUCTION",
    "bar_chart",
    "grouped_bar_chart",
    "LayerRoofline",
    "roofline_analysis",
    "ClaimCheck",
    "reproduction_report",
    "render_report",
    "SweepPoint",
    "width_resolution_sweep",
]
