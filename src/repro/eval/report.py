"""Plain-text rendering of experiment tables and series.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that formatting in one place.
"""

from __future__ import annotations

from ..errors import EvaluationError

__all__ = ["render_table", "render_series", "format_value"]


def format_value(value) -> str:
    """Format one cell: floats get 2 decimals, large ints thousands grouping."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(
    title: str, headers: list[str], rows: list[list]
) -> str:
    """Render an ASCII table with a title line."""
    if not headers:
        raise EvaluationError("table needs at least one column")
    for row in rows:
        if len(row) != len(headers):
            raise EvaluationError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    cells = [[format_value(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    title: str, x_label: str, y_label: str, xs: list, ys: list
) -> str:
    """Render an (x, y) series as a two-column table."""
    if len(xs) != len(ys):
        raise EvaluationError(
            f"series length mismatch: {len(xs)} xs vs {len(ys)} ys"
        )
    return render_table(title, [x_label, y_label], list(map(list, zip(xs, ys))))
