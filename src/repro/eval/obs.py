"""Text/JSON views of engine telemetry.

Two small surfaces kept out of the report dataclass's JSON form on
purpose: engine execution counters (events processed, peak heap,
dispatch path) and the rolling metrics timeline recorded by
:class:`repro.obs.MetricsTimeline`.  Both are *execution* telemetry —
how a run was carried out, not what it computed — so they ride next to
the report payload rather than inside it, keeping cached and golden
report dicts byte-identical across telemetry changes.
"""

from __future__ import annotations

from .report import render_table

__all__ = [
    "engine_counters_dict",
    "render_engine_counters",
    "render_metrics_timeline",
]


def engine_counters_dict(report) -> dict | None:
    """Engine execution counters as JSON, or ``None`` when the report
    predates them (empty dispatch tag — e.g. restored from a cache
    entry written before the counters existed)."""
    if not report.engine_dispatch:
        return None
    counters = {
        "events": report.engine_events,
        "peak_heap": report.engine_peak_heap,
        "dispatch": report.engine_dispatch,
    }
    # Only general-loop runs carry a fallback diagnosis; the key is
    # conditional so fast-path payloads keep their historical shape.
    fallback = getattr(report, "engine_fallback", "")
    if fallback and report.engine_dispatch == "general":
        counters["fallback"] = fallback
    return counters


def render_engine_counters(report) -> str:
    """The engine-counter table, or ``""`` when counters are absent."""
    counters = engine_counters_dict(report)
    if counters is None:
        return ""
    rows = [
        ["events processed", counters["events"]],
        ["peak event-heap size", counters["peak_heap"]],
        ["dispatch path", counters["dispatch"]],
    ]
    if "fallback" in counters:
        rows.append(["fast-path fallback", counters["fallback"]])
    return render_table(
        "Engine execution",
        ["Metric", "Value"],
        rows,
    )


def _mean(values) -> float:
    # Zero-instance fleets can't happen, but a defensive guard keeps
    # the renderer total on any payload shape.
    return sum(values) / len(values) if values else 0.0


def render_metrics_timeline(payload: dict) -> str:
    """The rolling metrics timeline(s) as text tables.

    ``payload`` is :meth:`repro.obs.Observability.metrics_payload`'s
    shape.  Every rate/mean in the samples is pre-guarded at sampling
    time, so zero-duration and zero-admitted runs render finite zeros
    rather than raising or printing ``-inf``.
    """
    sections = []
    for timeline in payload["timelines"]:
        label = timeline.get("label") or f"fleet {timeline['pid']}"
        title = (
            f"Metrics timeline — {label} "
            f"(window={timeline['window_s']}s"
        )
        if timeline["dropped_samples"]:
            title += f", {timeline['dropped_samples']} oldest dropped"
        title += ")"
        rows = [
            [
                round(s["t"], 3),
                round(s["offered_qps"], 1),
                round(s["admitted_qps"], 1),
                round(s["shed_qps"], 1),
                round(_mean(s["queue_depth"]), 1),
                round(_mean(s["utilization"]), 3),
                round(s["batch_size_mean"], 2),
                round(s["power_w"], 1),
            ]
            for s in timeline["samples"]
        ]
        if not rows:
            rows = [["(no samples)", "", "", "", "", "", "", ""]]
        sections.append(
            render_table(
                title,
                [
                    "t (s)",
                    "Offered/s",
                    "Admitted/s",
                    "Shed/s",
                    "Queue",
                    "Util",
                    "Batch",
                    "Power W",
                ],
                rows,
            )
        )
    return "\n\n".join(sections)
