"""Shared experiment workload: train, quantize, and run MobileNetV1.

Building the measured experiments (Figs. 11/12) needs a trained, quantized
network and one full accelerator run.  That preparation is deterministic
and moderately expensive, so this module memoizes it per configuration —
the benchmarks and examples all pull from the same cache within a process,
and an optional :class:`~repro.parallel.cache.ResultCache` persists
prepared workloads across processes and sessions (CLI runs, benchmark
invocations, CI shards).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arch.accelerator import LayerRunStats
from ..arch.params import EDEA_CONFIG, ArchConfig
from ..datasets import make_cifar10_like
from ..nn import SGD, Trainer, build_mobilenet_v1, mobilenet_v1_specs
from ..nn.mobilenet import DSCLayerSpec
from ..parallel.cache import ResultCache, make_key
from ..quant import QuantizedMobileNet, quantize_mobilenet
from ..sim import AcceleratorRunner, NetworkRunStats

__all__ = ["ExperimentWorkload", "prepare_workload", "clear_workload_cache"]


@dataclass
class ExperimentWorkload:
    """Everything the measured experiments consume.

    Attributes:
        specs: Layer geometry used.
        qmodel: The quantized network.
        run_stats: Accelerator measurements for one input image.
        images: The dataset images used (first one drove ``run_stats``).
    """

    specs: list[DSCLayerSpec]
    qmodel: QuantizedMobileNet
    run_stats: NetworkRunStats
    images: np.ndarray

    @property
    def layer_stats(self) -> list[LayerRunStats]:
        """Per-layer accelerator measurements."""
        return self.run_stats.layers


_CACHE: dict[tuple, ExperimentWorkload] = {}


def clear_workload_cache() -> None:
    """Drop all memoized workloads (tests use this)."""
    _CACHE.clear()


def prepare_workload(
    width_multiplier: float = 1.0,
    num_samples: int = 96,
    train_epochs: int = 1,
    batch_size: int = 16,
    learning_rate: float = 0.02,
    seed: int = 7,
    config: ArchConfig = EDEA_CONFIG,
    verify: bool = True,
    fast: bool = False,
    cache: ResultCache | None = None,
) -> ExperimentWorkload:
    """Train briefly, quantize, and run the accelerator once.

    All steps are seeded, so a given parameter tuple always produces the
    same workload; results are memoized per tuple, and persisted via
    ``cache`` when one is supplied.

    Args:
        width_multiplier: MobileNet width (1.0 = the paper's model).
        num_samples: Synthetic dataset size for the quick training.
        train_epochs: Training epochs (enough to move weights off init).
        batch_size: SGD batch size.
        learning_rate: SGD learning rate.
        seed: Master seed for data and weights.
        config: Accelerator configuration.
        verify: Bit-exact verification of every accelerator layer.
        fast: Use the analytic fast-latency accelerator mode (aggregate
            latency/energy only — skips event-driven tracing).
        cache: Optional persistent result cache for the whole workload.
    """
    key = (
        width_multiplier,
        num_samples,
        train_epochs,
        batch_size,
        learning_rate,
        seed,
        config,
        verify,
        fast,
    )
    disk_key = (
        make_key(
            "workload",
            width_multiplier=width_multiplier,
            num_samples=num_samples,
            train_epochs=train_epochs,
            batch_size=batch_size,
            learning_rate=learning_rate,
            seed=seed,
            config=config,
            verify=verify,
            fast=fast,
        )
        if cache is not None
        else None
    )
    if key in _CACHE:
        workload = _CACHE[key]
        if cache is not None and not cache.contains(disk_key):
            cache.put(disk_key, workload)
        return workload
    if cache is not None and cache.contains(disk_key):
        workload = cache.lookup(disk_key)
        _CACHE[key] = workload
        return workload

    specs = mobilenet_v1_specs(width_multiplier=width_multiplier)
    model = build_mobilenet_v1(width_multiplier=width_multiplier, seed=seed)
    dataset = make_cifar10_like(num_samples, seed=seed + 1)
    trainer = Trainer(
        model,
        SGD(list(model.parameters()), lr=learning_rate),
        batch_size=batch_size,
        seed=seed + 2,
    )
    trainer.fit(dataset.images, dataset.labels, epochs=train_epochs)

    calib = dataset.images[: min(16, num_samples)]
    qmodel = quantize_mobilenet(model, specs, calib)
    runner = AcceleratorRunner(
        qmodel, config=config, verify=verify, fast=fast
    )
    run_stats = runner.run_network(dataset.images[0])

    workload = ExperimentWorkload(
        specs=specs,
        qmodel=qmodel,
        run_stats=run_stats,
        images=dataset.images,
    )
    _CACHE[key] = workload
    if cache is not None:
        cache.put(disk_key, workload)
    return workload
