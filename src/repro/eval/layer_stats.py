"""Per-layer MACs, latency and throughput series (paper Figs. 10 and 13).

These series are fully determined by the layer geometry and the timing
model (Eqs. 1-2), so they can be produced analytically — and the test
suite separately checks the analytic values against the event-level
accelerator run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.params import EDEA_CONFIG, ArchConfig
from ..nn.mobilenet import MOBILENET_V1_CIFAR10_SPECS, DSCLayerSpec
from ..sim.pipeline import layer_latency

__all__ = ["LayerPerformance", "layer_performance_series"]


@dataclass(frozen=True)
class LayerPerformance:
    """One layer's Fig. 10 / Fig. 13 data point."""

    index: int
    macs: int
    cycles: int
    latency_ns: float
    throughput_gops: float
    init_fraction: float

    @property
    def ops(self) -> int:
        """Operations (2 per MAC)."""
        return 2 * self.macs


def layer_performance_series(
    specs: list[DSCLayerSpec] | None = None,
    config: ArchConfig = EDEA_CONFIG,
) -> list[LayerPerformance]:
    """Evaluate MACs, latency and throughput for every DSC layer.

    Args:
        specs: Layer geometry (defaults to MobileNetV1-CIFAR10).
        config: Architecture parameters (clock, tiles, initiation).

    Returns:
        One :class:`LayerPerformance` per layer, in layer order.
    """
    specs = specs if specs is not None else MOBILENET_V1_CIFAR10_SPECS
    series = []
    for spec in specs:
        breakdown = layer_latency(spec, config)
        latency_s = breakdown.latency_seconds(config.clock_hz)
        series.append(
            LayerPerformance(
                index=spec.index,
                macs=spec.total_macs,
                cycles=breakdown.total_cycles,
                latency_ns=latency_s * 1e9,
                throughput_gops=spec.total_ops / latency_s / 1e9,
                init_fraction=breakdown.init_fraction,
            )
        )
    return series
