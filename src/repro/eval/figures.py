"""Experiment registry: one entry per paper figure/table.

Each experiment returns an :class:`ExperimentResult` whose ``text`` is the
printable reproduction of the paper's figure/table data (measured values
side-by-side with the published ones) and whose ``data`` dict carries the
raw numbers for programmatic use.  The benchmark suite runs every entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..dse import (
    TABLE1_CASES,
    best_point,
    explore,
    intermediate_access_report,
    pe_array_size,
    table1_case,
    table2_dwc_activation_access,
    table2_dwc_weight_access,
    table2_pwc_activation_access,
    table2_pwc_weight_access,
)
from ..errors import EvaluationError
from ..nn.mobilenet import MOBILENET_V1_CIFAR10_SPECS
from ..power import AreaModel, PAPER_AREA_SHARES, PAPER_POWER_SHARES
from ..power.area_model import paper_total_area_mm2
from ..sim.tracer import trace_tile_pipeline
from .comparison import build_comparison, edea_speedups
from .efficiency import build_efficiency_report
from .layer_stats import layer_performance_series
from .paper_data import (
    PAPER_FIG3_REDUCTION,
    PAPER_FIG12_EE_TOPS_W,
    PAPER_FIG13_THROUGHPUT_GOPS,
    PAPER_HEADLINE,
)
from .report import render_table
from .workloads import ExperimentWorkload, prepare_workload

__all__ = ["ExperimentResult", "EXPERIMENTS", "run_experiment", "list_experiments"]


@dataclass
class ExperimentResult:
    """Output of one reproduced experiment."""

    experiment_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)


def _default_workload() -> ExperimentWorkload:
    return prepare_workload(num_samples=48, train_epochs=1, batch_size=12)


def experiment_table1(workload=None) -> ExperimentResult:
    """Table I: explored tiling cases."""
    rows = [[case, td, tk] for case, (td, tk) in sorted(TABLE1_CASES.items())]
    text = render_table("Table I - selected tiling sizes", ["Case", "Td", "Tk"], rows)
    return ExperimentResult("table1", "Tiling cases", text, {"cases": TABLE1_CASES})


def experiment_table2(workload=None) -> ExperimentResult:
    """Table II: PE-array and access equations for La, Tn=Tm=2."""
    tiling = table1_case(6, tn=2)
    pe = pe_array_size(tiling)
    rows = []
    for spec in MOBILENET_V1_CIFAR10_SPECS:
        rows.append(
            [
                spec.index,
                table2_dwc_activation_access(spec, tiling),
                table2_dwc_weight_access(spec),
                table2_pwc_activation_access(spec, tiling),
                table2_pwc_weight_access(spec),
            ]
        )
    text = render_table(
        "Table II - La, Tn=Tm=2 access equations per layer "
        f"(PE arrays: DWC={pe.dwc}, PWC={pe.pwc})",
        ["Layer", "DWC act", "DWC wgt", "PWC act", "PWC wgt"],
        rows,
    )
    return ExperimentResult(
        "table2",
        "Access equations",
        text,
        {"pe_dwc": pe.dwc, "pe_pwc": pe.pwc, "rows": rows},
    )


def experiment_fig2a(workload=None) -> ExperimentResult:
    """Fig. 2a: PE array size per group/case."""
    result = explore()
    rows = [
        [p.group, p.case, p.pe_dwc, p.pe_pwc, p.pe_total]
        for p in sorted(result.points, key=lambda q: (q.group, q.case))
    ]
    text = render_table(
        "Fig. 2a - PE array size",
        ["Group", "Case", "DWC PEs", "PWC PEs", "Total"],
        rows,
    )
    return ExperimentResult("fig2a", "DSE: PE array size", text, {"rows": rows})


def experiment_fig2b(workload=None) -> ExperimentResult:
    """Fig. 2b: activation/weight access counts per group/case."""
    result = explore()
    best = best_point(result)
    rows = [
        [p.group, p.case, p.activation_access, p.weight_access, p.total_access]
        for p in sorted(result.points, key=lambda q: (q.group, q.case))
    ]
    text = render_table(
        "Fig. 2b - access counts over all 13 DSC layers "
        f"(best: {best.group}, Case {best.case} - paper picks the same)",
        ["Group", "Case", "Activation", "Weight", "Total"],
        rows,
    )
    return ExperimentResult(
        "fig2b",
        "DSE: access counts",
        text,
        {"rows": rows, "best_group": best.group, "best_case": best.case},
    )


def experiment_fig3(workload=None) -> ExperimentResult:
    """Fig. 3: activation access with/without intermediate elimination."""
    report = intermediate_access_report()
    rows = [
        [x.index, x.baseline, x.optimized, round(x.reduction_percent, 1)]
        for x in report.layers
    ]
    rows.append(
        [
            "total",
            report.total_baseline,
            report.total_optimized,
            round(report.total_reduction_percent, 1),
        ]
    )
    text = render_table(
        "Fig. 3 - intermediate activation access elimination "
        f"(paper: {PAPER_FIG3_REDUCTION['min_percent']}%..."
        f"{PAPER_FIG3_REDUCTION['max_percent']}% per layer, "
        f"{PAPER_FIG3_REDUCTION['total_percent']}% total)",
        ["Layer", "Baseline", "Direct transfer", "Reduction %"],
        rows,
    )
    return ExperimentResult(
        "fig3",
        "Intermediate access elimination",
        text,
        {
            "min": report.min_reduction_percent,
            "max": report.max_reduction_percent,
            "total": report.total_reduction_percent,
        },
    )


def experiment_fig7(workload=None) -> ExperimentResult:
    """Fig. 7: pipeline timing of the dual engines."""
    events = trace_tile_pipeline(positions=4, kernel_groups=2)
    first_out = min(e.cycle for e in events if e.stage == "output")
    last = max(e.cycle for e in events)
    rows = [
        [e.cycle, e.stage, e.position, e.kernel_group] for e in events[:40]
    ]
    text = render_table(
        f"Fig. 7 - pipeline trace of one tile (first output at cycle "
        f"{first_out}, paper: 9; tile ends at cycle {last})",
        ["Cycle", "Stage", "Position", "Kernel group"],
        rows,
    )
    return ExperimentResult(
        "fig7",
        "Pipeline timing",
        text,
        {"first_output_cycle": first_out, "last_cycle": last},
    )


def experiment_fig8(workload=None) -> ExperimentResult:
    """Fig. 8: layout dimensions and total area."""
    model = AreaModel.calibrated()
    areas = model.component_areas_mm2()
    rows = [[k, round(v, 4)] for k, v in areas.items()]
    rows.append(["total", round(model.total_area_mm2(), 4)])
    text = render_table(
        f"Fig. 8 - area model (paper die: 825.032 x 699.52 um = "
        f"{paper_total_area_mm2():.3f} mm2, quoted 0.58 mm2; "
        f"PWC/DWC ratio {model.pwc_to_dwc_ratio():.2f}, paper ~1.7)",
        ["Component", "Area mm2"],
        rows,
    )
    return ExperimentResult(
        "fig8",
        "Layout / area",
        text,
        {"areas": areas, "total": model.total_area_mm2()},
    )


def experiment_fig9(workload=None) -> ExperimentResult:
    """Fig. 9: area and power breakdowns."""
    rows = []
    for name in sorted(
        set(PAPER_AREA_SHARES) | set(PAPER_POWER_SHARES)
    ):
        rows.append(
            [
                name,
                round(100 * PAPER_AREA_SHARES.get(name, 0.0), 2),
                round(100 * PAPER_POWER_SHARES.get(name, 0.0), 2),
            ]
        )
    text = render_table(
        "Fig. 9 - area (left) and power (right) breakdown shares "
        "(model calibration targets = paper values)",
        ["Component", "Area %", "Power %"],
        rows,
    )
    return ExperimentResult(
        "fig9",
        "Area/power breakdown",
        text,
        {"area": PAPER_AREA_SHARES, "power": PAPER_POWER_SHARES},
    )


def experiment_fig10(workload=None) -> ExperimentResult:
    """Fig. 10: per-layer MAC operations and latency."""
    series = layer_performance_series()
    rows = [
        [p.index, p.macs, p.cycles, round(p.latency_ns, 1),
         round(100 * p.init_fraction, 2)]
        for p in series
    ]
    text = render_table(
        "Fig. 10 - MAC operations and latency per layer (1 GHz)",
        ["Layer", "MACs", "Cycles", "Latency ns", "Init %"],
        rows,
    )
    return ExperimentResult(
        "fig10",
        "MACs and latency",
        text,
        {"latency_ns": [p.latency_ns for p in series],
         "macs": [p.macs for p in series]},
    )


def experiment_fig11(workload=None) -> ExperimentResult:
    """Fig. 11: per-layer power and zero percentage (measured workload)."""
    workload = workload if workload is not None else _default_workload()
    report = build_efficiency_report(
        workload.layer_stats, workload.run_stats.clock_hz, mode="measured"
    )
    paper_report = build_efficiency_report(
        workload.layer_stats, workload.run_stats.clock_hz, mode="paper_profile"
    )
    rows = [
        [
            m.index,
            round(1e3 * m.power_w, 1),
            round(m.dwc_zero_percent, 1),
            round(m.pwc_zero_percent, 1),
            round(1e3 * p.power_w, 1),
        ]
        for m, p in zip(report.layers, paper_report.layers)
    ]
    text = render_table(
        "Fig. 11 - power and zero percentage per layer "
        "(paper endpoints: layer1 117.7 mW, layer12 67.7 mW)",
        ["Layer", "Power mW (measured)", "DWC zero %", "PWC zero %",
         "Power mW (paper profile)"],
        rows,
    )
    return ExperimentResult(
        "fig11",
        "Power and sparsity",
        text,
        {
            "measured_power_w": [m.power_w for m in report.layers],
            "profile_power_w": [p.power_w for p in paper_report.layers],
            "calibration_note": report.calibration_note,
        },
    )


def experiment_fig12(workload=None) -> ExperimentResult:
    """Fig. 12: per-layer energy efficiency."""
    workload = workload if workload is not None else _default_workload()
    measured = build_efficiency_report(
        workload.layer_stats, workload.run_stats.clock_hz, mode="measured"
    )
    profile = build_efficiency_report(
        workload.layer_stats, workload.run_stats.clock_hz, mode="paper_profile"
    )
    rows = [
        [
            m.index,
            round(m.ee_tops_w, 2),
            round(p.ee_tops_w, 2),
            PAPER_FIG12_EE_TOPS_W[m.index],
        ]
        for m, p in zip(measured.layers, profile.layers)
    ]
    text = render_table(
        "Fig. 12 - energy efficiency per layer (TOPS/W); paper peak "
        f"{PAPER_HEADLINE['peak_ee_tops_w']} at layer "
        f"{PAPER_HEADLINE['peak_ee_layer']}",
        ["Layer", "Measured", "Paper-profile", "Paper"],
        rows,
    )
    return ExperimentResult(
        "fig12",
        "Energy efficiency",
        text,
        {
            "measured_ee": [m.ee_tops_w for m in measured.layers],
            "profile_ee": [p.ee_tops_w for p in profile.layers],
            "profile_peak_layer": profile.peak_ee_layer,
            "profile_peak_ee": profile.peak_ee_tops_w,
        },
    )


def experiment_fig13(workload=None) -> ExperimentResult:
    """Fig. 13: per-layer throughput."""
    series = layer_performance_series()
    rows = [
        [p.index, round(p.throughput_gops, 2),
         PAPER_FIG13_THROUGHPUT_GOPS[p.index]]
        for p in series
    ]
    mean = sum(p.throughput_gops for p in series) / len(series)
    text = render_table(
        f"Fig. 13 - throughput per layer (mean {mean:.2f} GOPS, "
        f"paper average {PAPER_HEADLINE['average_throughput_gops']})",
        ["Layer", "Measured GOPS", "Paper GOPS"],
        rows,
    )
    return ExperimentResult(
        "fig13",
        "Throughput",
        text,
        {"throughput_gops": [p.throughput_gops for p in series]},
    )


def experiment_table3(workload=None) -> ExperimentResult:
    """Table III: comparison with prior accelerators."""
    rows_data = build_comparison()
    speedups = edea_speedups(rows_data)
    rows = [
        [
            r.name,
            int(r.tech_nm),
            r.precision_bits,
            r.voltage_v,
            r.pe_count,
            round(r.throughput_gops, 2),
            round(r.energy_efficiency_tops_w, 2),
            round(r.area_efficiency_gops_mm2, 2),
            round(r.paper_normalized_ee, 2),
            round(r.model_normalized_ee, 2),
        ]
        for r in rows_data
    ]
    text = render_table(
        "Table III - comparison with state-of-the-art (8-bit-normalized "
        "raw values; paper-published and model normalizations)",
        ["Work", "nm", "bits", "V", "PEs", "GOPS", "TOPS/W",
         "GOPS/mm2", "Norm EE (paper)", "Norm EE (model)"],
        rows,
    )
    return ExperimentResult(
        "table3",
        "SotA comparison",
        text,
        {"rows": rows, "speedups": speedups},
    )


EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": experiment_table1,
    "table2": experiment_table2,
    "fig2a": experiment_fig2a,
    "fig2b": experiment_fig2b,
    "fig3": experiment_fig3,
    "fig7": experiment_fig7,
    "fig8": experiment_fig8,
    "fig9": experiment_fig9,
    "fig10": experiment_fig10,
    "fig11": experiment_fig11,
    "fig12": experiment_fig12,
    "fig13": experiment_fig13,
    "table3": experiment_table3,
}


def list_experiments() -> list[str]:
    """IDs of all reproducible figures/tables."""
    return sorted(EXPERIMENTS)


def run_experiment(
    experiment_id: str, workload: ExperimentWorkload | None = None
) -> ExperimentResult:
    """Run one experiment by its figure/table id."""
    if experiment_id not in EXPERIMENTS:
        raise EvaluationError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(list_experiments())}"
        )
    return EXPERIMENTS[experiment_id](workload)
