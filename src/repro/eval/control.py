"""Plain-text reports for control-plane (SLO/energy) simulations.

Follows the evaluation harness idiom — :func:`render_table` for
numbers, the ASCII chart helpers for shape — plus
:func:`report_to_dict`, the machine-readable form behind the CLI's
``--json`` output (everything JSON-serializable, no NumPy leakage).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from ..errors import EvaluationError
from ..serve.simulator import ServingReport
from .report import render_table
from .serving_format import mj as _mj
from .serving_format import ms as _ms
from .serving_format import report_title, utilization_chart

__all__ = [
    "render_control_report",
    "render_control_sweep",
    "report_to_dict",
]


def report_to_dict(report: ServingReport) -> dict:
    """A JSON-serializable view of one report, including the derived
    metrics (offered load, mean utilizations, overall attainment)."""
    payload = dataclasses.asdict(report)
    payload["class_stats"] = [
        dataclasses.asdict(cs) for cs in report.class_stats
    ]
    payload["offered_load"] = report.offered_load
    payload["mean_utilization"] = report.mean_utilization
    payload["mean_utilization_busy"] = report.mean_utilization_busy
    payload["slo_attainment"] = report.slo_attainment
    return payload


def render_control_report(report: ServingReport) -> str:
    """One controlled run: headline, per-class SLOs, energy, shedding."""
    headline = render_table(
        report_title("Control report", report),
        ["Metric", "Value"],
        [
            ["offered requests", report.offered_requests],
            ["completed requests", report.requests],
            ["shed requests", report.shed_requests],
            ["offered QPS", round(report.offered_qps, 1)],
            ["fleet capacity QPS", round(report.capacity_qps, 1)],
            ["offered load", round(report.offered_load, 3)],
            ["sustained QPS", round(report.sustained_qps, 1)],
            ["latency p50 (ms)", _ms(report.latency_p50_s)],
            ["latency p99 (ms)", _ms(report.latency_p99_s)],
            ["SLO attainment", round(report.slo_attainment or 0.0, 4)],
            ["energy (mJ)", _mj(report.energy_joules)],
            ["energy/request (mJ)", _mj(report.joules_per_request)],
            ["autoscale events", report.autoscale_events],
            [
                "mean active instances",
                round(report.mean_active_instances or 0.0, 2),
            ],
            [
                "mean utilization (busy window)",
                round(report.mean_utilization_busy, 3),
            ],
        ],
    )
    classes = render_table(
        "Per-class SLO attainment",
        [
            "Class",
            "Prio",
            "Deadline ms",
            "Target",
            "Offered",
            "Shed",
            "Met",
            "Attainment",
            "p99 ms",
            "OK",
        ],
        [
            [
                cs.name,
                cs.priority,
                cs.deadline_ms,
                cs.target,
                cs.offered,
                cs.shed,
                cs.met,
                round(cs.attainment, 4),
                _ms(cs.latency_p99_s),
                "yes" if cs.satisfied else "NO",
            ]
            for cs in report.class_stats
        ],
    )
    utilization = utilization_chart(
        report, "Per-instance utilization (of makespan)"
    )
    return "\n\n".join([headline, classes, utilization])


def render_control_sweep(
    reports: Sequence[ServingReport],
    labels: Sequence[str] | None = None,
    frontier: Sequence[int] = (),
) -> str:
    """Energy-vs-attainment grid; frontier rows are starred."""
    if not reports:
        raise EvaluationError("sweep rendering needs at least one report")
    if labels is not None and len(labels) != len(reports):
        raise EvaluationError(
            f"labels/reports length mismatch: {len(labels)} vs "
            f"{len(reports)}"
        )
    on_frontier = set(frontier)
    rows = [
        [
            labels[i] if labels is not None else f"#{i}",
            r.instances,
            round(r.offered_qps, 1),
            round(r.slo_attainment or 0.0, 4),
            _ms(r.latency_p99_s),
            _mj(r.energy_joules),
            _mj(r.joules_per_request),
            r.shed_requests,
            "*" if i in on_frontier else "",
        ]
        for i, r in enumerate(reports)
    ]
    return render_table(
        f"Control sweep ({len(reports)} scenarios, "
        f"mix={reports[0].mix}; * = energy/SLO Pareto frontier)",
        [
            "Scenario",
            "Inst",
            "QPS",
            "Attainment",
            "p99 ms",
            "mJ",
            "mJ/req",
            "Shed",
            "Pareto",
        ],
        rows,
    )
