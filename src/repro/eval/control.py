"""Plain-text reports for control-plane (SLO/energy) simulations.

Follows the evaluation harness idiom — :func:`render_table` for
numbers, the ASCII chart helpers for shape — plus
:func:`report_to_dict`, the machine-readable form behind the CLI's
``--json`` output (everything JSON-serializable, no NumPy leakage).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from ..errors import EvaluationError
from ..serve.simulator import ServingReport
from .obs import render_engine_counters
from .report import render_table
from .serving_format import mj as _mj
from .serving_format import ms as _ms
from .serving_format import report_title, utilization_chart

__all__ = [
    "render_control_report",
    "render_control_sweep",
    "render_multi_fleet_report",
    "multi_fleet_to_dict",
    "report_to_dict",
]


def _class_stats_dict(cs) -> dict:
    """One ClassStats as JSON, dropping the ``model`` key when unbound
    so pre-tenancy report payloads stay byte-identical (the engine
    parity goldens compare them unregenerated)."""
    payload = dataclasses.asdict(cs)
    if payload.get("model") is None:
        payload.pop("model", None)
    return payload


def report_to_dict(report: ServingReport) -> dict:
    """A JSON-serializable view of one report, including the derived
    metrics (offered load, mean utilizations, overall attainment).

    Fields grown after reports started living in caches and goldens
    (``model_stats``) are omitted while at their defaults, mirroring
    :func:`repro.parallel.cache.extension_field`'s key treatment.
    """
    payload = dataclasses.asdict(report)
    payload["class_stats"] = [
        _class_stats_dict(cs) for cs in report.class_stats
    ]
    if report.model_stats:
        payload["model_stats"] = [
            _class_stats_dict(cs) for cs in report.model_stats
        ]
    else:
        payload.pop("model_stats", None)
    # Engine counters are execution telemetry (how the run was carried
    # out), not simulation results: dropped unconditionally so cached
    # and golden payloads stay byte-identical, surfaced separately via
    # :func:`repro.eval.obs.engine_counters_dict`.
    for key in (
        "engine_events",
        "engine_peak_heap",
        "engine_dispatch",
        "engine_fallback",
    ):
        payload.pop(key, None)
    payload["offered_load"] = report.offered_load
    payload["mean_utilization"] = report.mean_utilization
    payload["mean_utilization_busy"] = report.mean_utilization_busy
    payload["slo_attainment"] = report.slo_attainment
    return payload


def _attainment_table(title: str, stats, first_column: str) -> str:
    """Per-class / per-model attainment rows (one ClassStats shape)."""
    return render_table(
        title,
        [
            first_column,
            "Prio",
            "Deadline ms",
            "Target",
            "Offered",
            "Shed",
            "Met",
            "Attainment",
            "p99 ms",
            "OK",
        ],
        [
            [
                cs.name,
                cs.priority,
                round(cs.deadline_ms, 3),
                round(cs.target, 4),
                cs.offered,
                cs.shed,
                cs.met,
                round(cs.attainment, 4),
                _ms(cs.latency_p99_s),
                "yes" if cs.satisfied else "NO",
            ]
            for cs in stats
        ],
    )


def render_control_report(report: ServingReport) -> str:
    """One controlled run: headline, per-class (and, with model-bound
    classes, per-model) SLOs, energy, shedding."""
    headline = render_table(
        report_title("Control report", report),
        ["Metric", "Value"],
        [
            ["offered requests", report.offered_requests],
            ["completed requests", report.requests],
            ["shed requests", report.shed_requests],
            ["offered QPS", round(report.offered_qps, 1)],
            ["fleet capacity QPS", round(report.capacity_qps, 1)],
            ["offered load", round(report.offered_load, 3)],
            ["sustained QPS", round(report.sustained_qps, 1)],
            ["latency p50 (ms)", _ms(report.latency_p50_s)],
            ["latency p99 (ms)", _ms(report.latency_p99_s)],
            ["SLO attainment", round(report.slo_attainment or 0.0, 4)],
            ["energy (mJ)", _mj(report.energy_joules)],
            ["energy/request (mJ)", _mj(report.joules_per_request)],
            ["autoscale events", report.autoscale_events],
            [
                "mean active instances",
                round(report.mean_active_instances or 0.0, 2),
            ],
            [
                "mean utilization (busy window)",
                round(report.mean_utilization_busy, 3),
            ],
        ],
    )
    sections = [
        headline,
        _attainment_table(
            "Per-class SLO attainment", report.class_stats, "Class"
        ),
    ]
    if report.model_stats:
        sections.append(
            _attainment_table(
                "Per-model SLO attainment", report.model_stats, "Model"
            )
        )
    sections.append(
        utilization_chart(
            report, "Per-instance utilization (of makespan)"
        )
    )
    engine = render_engine_counters(report)
    if engine:
        sections.append(engine)
    return "\n\n".join(sections)


def render_control_sweep(
    reports: Sequence[ServingReport],
    labels: Sequence[str] | None = None,
    frontier: Sequence[int] = (),
) -> str:
    """Energy-vs-attainment grid; frontier rows are starred."""
    if not reports:
        raise EvaluationError("sweep rendering needs at least one report")
    if labels is not None and len(labels) != len(reports):
        raise EvaluationError(
            f"labels/reports length mismatch: {len(labels)} vs "
            f"{len(reports)}"
        )
    on_frontier = set(frontier)
    rows = [
        [
            labels[i] if labels is not None else f"#{i}",
            r.instances,
            round(r.offered_qps, 1),
            round(r.slo_attainment or 0.0, 4),
            _ms(r.latency_p99_s),
            _mj(r.energy_joules),
            _mj(r.joules_per_request),
            r.shed_requests,
            "*" if i in on_frontier else "",
        ]
        for i, r in enumerate(reports)
    ]
    return render_table(
        f"Control sweep ({len(reports)} scenarios, "
        f"mix={reports[0].mix}; * = energy/SLO Pareto frontier)",
        [
            "Scenario",
            "Inst",
            "QPS",
            "Attainment",
            "p99 ms",
            "mJ",
            "mJ/req",
            "Shed",
            "Pareto",
        ],
        rows,
    )


def multi_fleet_to_dict(report) -> dict:
    """A JSON-serializable view of one
    :class:`~repro.control.tenancy.MultiFleetReport`: the aggregate
    fields plus each member fleet's full report dict."""
    # Field by field, not dataclasses.asdict: asdict would deep-convert
    # every nested ServingReport only to be overwritten below.
    payload = {
        f.name: getattr(report, f.name)
        for f in dataclasses.fields(report)
        if f.name != "fleets"
    }
    payload["offered_load"] = list(report.offered_load)
    payload["fleets"] = [
        report_to_dict(fleet) for fleet in report.fleets
    ]
    payload["conserved"] = report.conserved
    return payload


def render_multi_fleet_report(report) -> str:
    """One correlated multi-fleet run: per-fleet rows + the aggregate.

    Per-fleet columns read off each member's engine-local report (its
    offered count includes received spill-ins); the aggregate block
    accounts end to end per original request, so spilled-and-served
    traffic counts once, at its final outcome.
    """
    rows = [
        [
            f"#{k}",
            fleet.mix,
            fleet.instances,
            round(rho, 3),
            fleet.offered_requests,
            fleet.requests,
            fleet.shed_requests,
            round(fleet.slo_attainment or 0.0, 4),
            _ms(fleet.latency_p99_s),
            _mj(fleet.energy_joules),
        ]
        for k, (fleet, rho) in enumerate(
            zip(report.fleets, report.offered_load)
        )
    ]
    fleets = render_table(
        f"Multi-fleet report ({len(report.fleets)} fleets, "
        f"modulator={report.modulator}, spillover={report.spillover})",
        [
            "Fleet",
            "Mix",
            "Inst",
            "rho",
            "Offered",
            "Done",
            "Shed",
            "Attainment",
            "p99 ms",
            "mJ",
        ],
        rows,
    )
    aggregate = render_table(
        "Aggregate (end-to-end per original request)",
        ["Metric", "Value"],
        [
            ["offered requests", report.offered_requests],
            ["completed requests", report.completed_requests],
            ["terminally shed", report.shed_requests],
            ["spilled requests", report.spilled_requests],
            ["spill completed", report.spill_completed],
            ["spill met deadline", report.spill_met],
            ["SLO attainment", round(report.attainment, 4)],
            ["latency p99 (ms)", _ms(report.latency_p99_s)],
            ["energy (mJ)", _mj(report.energy_joules)],
            ["conserved", "yes" if report.conserved else "NO"],
        ],
    )
    return "\n\n".join([fleets, aggregate])
