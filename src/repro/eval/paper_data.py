"""Published numbers from the EDEA paper, kept in one place.

Every figure/table benchmark prints its measured values next to these
reference values, and EXPERIMENTS.md records the comparison.  Sources are
the paper's text and figures (SOCC 2024 camera-ready as posted on arXiv).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PAPER_FIG12_EE_TOPS_W",
    "PAPER_FIG13_THROUGHPUT_GOPS",
    "PAPER_FIG11_LAYER12_ZEROS",
    "PAPER_FIG3_REDUCTION",
    "PAPER_HEADLINE",
    "SotaWork",
    "SOTA_WORKS",
    "EDEA_TABLE3_ROW",
]

#: Fig. 12: per-layer energy efficiency in TOPS/W (layers 0..12).
PAPER_FIG12_EE_TOPS_W = [
    10.89, 8.70, 9.07, 9.36, 9.69, 9.81, 9.74,
    11.99, 12.51, 12.50, 13.43, 10.77, 13.38,
]

#: Fig. 13: per-layer throughput in GOPS (layers 0..12).
PAPER_FIG13_THROUGHPUT_GOPS = [
    1024.0, 1024.0, 1024.0, 1024.0, 1024.0,
    973.55, 973.55, 973.55, 973.55, 973.55, 973.55,
    905.64, 905.64,
]

#: Fig. 11 (text): layer 12 zero percentages for DWC and PWC activations.
PAPER_FIG11_LAYER12_ZEROS = {"dwc": 0.974, "pwc": 0.953}

#: Fig. 3 (text): intermediate-access elimination statistics.
PAPER_FIG3_REDUCTION = {
    "min_percent": 15.4,
    "max_percent": 46.9,
    "total_percent": 34.7,
}

#: Abstract / Section IV headline numbers.
PAPER_HEADLINE = {
    "peak_ee_tops_w": 13.43,
    "peak_ee_layer": 10,
    "peak_throughput_gops": 1024.0,
    "throughput_at_peak_ee_gops": 973.55,
    "average_ee_tops_w": 11.13,
    "average_throughput_gops": 981.42,
    "layer1_power_w": 0.1177,
    "layer12_power_w": 0.0677,
    "lowest_ee_tops_w": 8.70,
    "lowest_ee_layer": 1,
    "area_mm2": 0.58,
    "area_efficiency_gops_mm2": 1678.53,
    "clock_ghz": 1.0,
    "pe_count": 800,
}


@dataclass(frozen=True)
class SotaWork:
    """One comparison row of Table III.

    ``normalized_*`` hold the paper's published values after scaling to
    22 nm / 0.8 V / 8 bit with the methodology of its reference [19].
    Throughput/efficiency entries for 16-bit works are the published raw
    values; the ``(precision/8)²`` ops factor is applied separately.
    """

    name: str
    venue: str
    tech_nm: float
    precision_bits: int
    voltage_v: float
    pe_count: int
    benchmark: str
    conv_type: str
    power_w: float
    frequency_mhz: float
    area_mm2: float
    throughput_gops: float
    energy_efficiency_tops_w: float
    area_efficiency_gops_mm2: float
    normalized_ee_tops_w: float
    normalized_ae_gops_mm2: float


SOTA_WORKS: list[SotaWork] = [
    SotaWork(
        name="Chen et al. [16]",
        venue="ISVLSI'19",
        tech_nm=65, precision_bits=8, voltage_v=1.08, pe_count=256,
        benchmark="MobileNetV1", conv_type="DWC+PWC",
        power_w=0.0554, frequency_mhz=100, area_mm2=3.24,
        throughput_gops=51.2,
        energy_efficiency_tops_w=0.92,
        area_efficiency_gops_mm2=15.8,
        normalized_ee_tops_w=7.73,
        normalized_ae_gops_mm2=266.86,
    ),
    SotaWork(
        name="Hsiao et al. [17]",
        venue="ICCE-TW'21",
        tech_nm=40, precision_bits=16, voltage_v=0.9, pe_count=128,
        benchmark="MobileNetV1", conv_type="DWC+PWC",
        power_w=0.1125, frequency_mhz=200, area_mm2=2.168,
        throughput_gops=38.8,
        energy_efficiency_tops_w=0.34,
        area_efficiency_gops_mm2=17.9,
        # Paper prints "1.08 (4.32)" / "72.53 (290.12)" where the
        # parenthesised values are additionally normalized to 8 bit; we
        # store those since every cross-work factor is quoted at 8 bit
        # (13.43 / 4.32 = the paper's 3.11x claim).
        normalized_ee_tops_w=4.32,
        normalized_ae_gops_mm2=290.12,
    ),
    SotaWork(
        name="Jung et al. [18]",
        venue="TCASI'24",
        tech_nm=28, precision_bits=8, voltage_v=0.9, pe_count=288,
        benchmark="DTN", conv_type="SC+DSC",
        power_w=0.0436, frequency_mhz=200, area_mm2=1.485,
        throughput_gops=215.6,
        energy_efficiency_tops_w=4.94,
        area_efficiency_gops_mm2=145.28,
        normalized_ee_tops_w=9.9,
        normalized_ae_gops_mm2=255.0,
    ),
    SotaWork(
        name="Chen et al. [4] (DWC engine)",
        venue="VLSI-SoC'23",
        tech_nm=22, precision_bits=8, voltage_v=0.8, pe_count=72,
        benchmark="MobileNetV1", conv_type="DWC",
        power_w=0.0256, frequency_mhz=1000, area_mm2=0.25,
        throughput_gops=129.8,
        energy_efficiency_tops_w=5.07,
        area_efficiency_gops_mm2=519.2,
        normalized_ee_tops_w=5.07,
        normalized_ae_gops_mm2=519.2,
    ),
    SotaWork(
        name="Chen et al. [4] (PWC engine)",
        venue="VLSI-SoC'23",
        tech_nm=22, precision_bits=8, voltage_v=0.8, pe_count=72,
        benchmark="MobileNetV1", conv_type="PWC",
        power_w=0.02916, frequency_mhz=1000, area_mm2=0.25,
        throughput_gops=115.38,
        energy_efficiency_tops_w=3.96,
        area_efficiency_gops_mm2=461.52,
        normalized_ee_tops_w=3.96,
        normalized_ae_gops_mm2=461.52,
    ),
]

#: "This Work" column of Table III.
EDEA_TABLE3_ROW = {
    "tech_nm": 22,
    "precision_bits": 8,
    "voltage_v": 0.8,
    "pe_count": 800,
    "benchmark": "MobileNetV1",
    "conv_type": "DWC+PWC",
    "power_w": 0.0725,
    "frequency_mhz": 1000,
    "area_mm2": 0.58,
    "throughput_gops": 973.55,
    "energy_efficiency_tops_w": 13.43,
    "area_efficiency_gops_mm2": 1678.53,
}
