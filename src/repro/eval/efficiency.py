"""Per-layer power and energy-efficiency series (paper Figs. 11 and 12).

Two activity sources are supported:

* ``mode="measured"`` — the zero percentages actually measured on our
  synthetic-data workload.  Honest but flatter than the paper's: a
  briefly-trained network on synthetic data does not reach the 95%+ deep-
  layer sparsity of a fully-trained CIFAR10 model, so the power spread
  between layers is smaller (the calibration note records the shortfall).
* ``mode="paper_profile"`` — the same pipeline driven by a sparsity
  profile anchored to the paper's published layer-12 zero percentages
  (DWC 97.4%, PWC 95.3%) and rising with depth.  This validates the
  *mechanism*: with the paper's sparsity, the model reproduces the paper's
  EE shape (peak at layer 10, minimum at layer 1) and endpoint powers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..arch.accelerator import LayerRunStats
from ..errors import EvaluationError
from ..power.energy_model import PowerModel
from .paper_data import PAPER_FIG11_LAYER12_ZEROS

__all__ = [
    "LayerEfficiency",
    "EfficiencyReport",
    "build_efficiency_report",
    "paper_profile_stats",
]


@dataclass(frozen=True)
class LayerEfficiency:
    """One layer's Fig. 11 / Fig. 12 data point."""

    index: int
    power_w: float
    ee_tops_w: float
    throughput_gops: float
    dwc_zero_percent: float
    pwc_zero_percent: float
    energy_joules: float


@dataclass
class EfficiencyReport:
    """Figs. 11/12 series plus network-level aggregates."""

    mode: str
    layers: list[LayerEfficiency]
    beta: float
    scale_watts: float
    calibration_note: str | None

    @property
    def peak_ee_tops_w(self) -> float:
        """Highest layer efficiency (paper: 13.43 TOPS/W)."""
        return max(layer.ee_tops_w for layer in self.layers)

    @property
    def peak_ee_layer(self) -> int:
        """Layer achieving the peak (paper: layer 10)."""
        best = max(self.layers, key=lambda layer: layer.ee_tops_w)
        return best.index

    @property
    def lowest_ee_tops_w(self) -> float:
        """Lowest layer efficiency (paper: 8.70 TOPS/W)."""
        return min(layer.ee_tops_w for layer in self.layers)

    @property
    def mean_ee_tops_w(self) -> float:
        """Arithmetic mean over layers (paper's "average": 11.13)."""
        return sum(layer.ee_tops_w for layer in self.layers) / len(self.layers)

    @property
    def ops_weighted_ee_tops_w(self) -> float:
        """Total ops / total energy — the physically meaningful mean."""
        total_energy = sum(layer.energy_joules for layer in self.layers)
        total_ops = sum(
            layer.throughput_gops * 1e9 * (layer.energy_joules / layer.power_w)
            for layer in self.layers
        )
        return total_ops / total_energy / 1e12

    @property
    def max_power_w(self) -> float:
        """Highest layer power (paper: 117.7 mW at layer 1)."""
        return max(layer.power_w for layer in self.layers)

    @property
    def min_power_w(self) -> float:
        """Lowest layer power (paper: 67.7 mW at layer 12)."""
        return min(layer.power_w for layer in self.layers)


def paper_profile_stats(
    layer_stats: list[LayerRunStats],
    start_zero_fraction: float = 0.50,
) -> list[LayerRunStats]:
    """Replace measured zero counts with a paper-anchored depth profile.

    Zero fractions rise linearly from ``start_zero_fraction`` at layer 0
    to the paper's published layer-12 values (DWC 97.4%, PWC 95.3%).
    Utilizations, cycles and MACs stay as measured.
    """
    if not layer_stats:
        raise EvaluationError("no layer stats supplied")
    last = max(stats.layer_index for stats in layer_stats)
    result = []
    for stats in layer_stats:
        frac = stats.layer_index / last if last else 1.0
        z_dwc = start_zero_fraction + frac * (
            PAPER_FIG11_LAYER12_ZEROS["dwc"] - start_zero_fraction
        )
        z_pwc = start_zero_fraction + frac * (
            PAPER_FIG11_LAYER12_ZEROS["pwc"] - start_zero_fraction
        )
        result.append(
            dataclasses.replace(
                stats,
                dwc_input_zeros=int(round(z_dwc * stats.dwc_input_elements)),
                pwc_input_zeros=int(round(z_pwc * stats.pwc_input_elements)),
            )
        )
    return result


def build_efficiency_report(
    layer_stats: list[LayerRunStats],
    clock_hz: float,
    mode: str = "measured",
    power_model: PowerModel | None = None,
) -> EfficiencyReport:
    """Build the Figs. 11/12 report from accelerator measurements.

    Args:
        layer_stats: Per-layer run statistics (one accelerator run).
        clock_hz: Clock frequency for latency/throughput conversion.
        mode: ``"measured"`` or ``"paper_profile"`` (see module docstring).
        power_model: Pre-calibrated model; when None, calibration runs on
            the (possibly profile-adjusted) stats.
    """
    if mode == "measured":
        stats = list(layer_stats)
    elif mode == "paper_profile":
        stats = paper_profile_stats(layer_stats)
    else:
        raise EvaluationError(f"unknown efficiency mode {mode!r}")
    model = (
        power_model
        if power_model is not None
        else PowerModel.calibrate(stats)
    )
    layers = []
    for s in stats:
        power = model.layer_power(s).total_watts
        throughput = s.throughput_ops_per_second(clock_hz)
        layers.append(
            LayerEfficiency(
                index=s.layer_index,
                power_w=power,
                ee_tops_w=throughput / power / 1e12,
                throughput_gops=throughput / 1e9,
                dwc_zero_percent=100.0 * s.dwc_zero_fraction,
                pwc_zero_percent=100.0 * s.pwc_zero_fraction,
                energy_joules=power * s.cycles / clock_hz,
            )
        )
    return EfficiencyReport(
        mode=mode,
        layers=layers,
        beta=model.beta,
        scale_watts=model.scale_watts,
        calibration_note=model.calibration_note,
    )
