"""One-shot reproduction report: every claim checked, one verdict each.

Aggregates the key quantitative claims of the paper into a single list of
checks, each comparing the reproduced value against the published one
under an explicit tolerance, and renders a pass/fail report.  This is the
"did the reproduction hold?" artifact — the CLI exposes it as
``python -m repro report`` and the test suite asserts every check passes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch import dual_vs_baselines
from ..dse import (
    best_point,
    explore,
    intermediate_access_report,
    pe_array_size,
    table1_case,
)
from ..nn.mobilenet import MOBILENET_V1_CIFAR10_SPECS
from ..power.area_model import AreaModel
from .comparison import build_comparison, edea_speedups
from .efficiency import build_efficiency_report
from .layer_stats import layer_performance_series
from .paper_data import PAPER_FIG13_THROUGHPUT_GOPS, PAPER_HEADLINE
from .report import render_table
from .workloads import ExperimentWorkload

__all__ = ["ClaimCheck", "reproduction_report", "render_report"]


@dataclass(frozen=True)
class ClaimCheck:
    """One verified claim.

    Attributes:
        claim: What the paper states.
        paper_value: The published number (or description).
        measured_value: What the reproduction produced.
        tolerance: Human-readable tolerance applied.
        passed: Whether the measured value satisfies the tolerance.
    """

    claim: str
    paper_value: str
    measured_value: str
    tolerance: str
    passed: bool


def _check_rel(claim, paper, measured, rel):
    ok = abs(measured - paper) <= rel * abs(paper)
    return ClaimCheck(
        claim=claim,
        paper_value=f"{paper:g}",
        measured_value=f"{measured:g}",
        tolerance=f"±{100 * rel:g}%",
        passed=ok,
    )


def _check_exact(claim, paper, measured):
    return ClaimCheck(
        claim=claim,
        paper_value=str(paper),
        measured_value=str(measured),
        tolerance="exact",
        passed=paper == measured,
    )


def reproduction_report(
    workload: ExperimentWorkload | None = None,
) -> list[ClaimCheck]:
    """Evaluate every headline claim.

    Args:
        workload: A prepared measured workload for the power/efficiency
            claims; when None those claims are skipped (the analytic
            claims need no workload).
    """
    checks: list[ClaimCheck] = []

    # --- engines and DSE
    pe = pe_array_size(table1_case(6, tn=2))
    checks.append(_check_exact("DWC engine MACs", 288, pe.dwc))
    checks.append(_check_exact("PWC engine MACs", 512, pe.pwc))
    checks.append(_check_exact("Total PE count (Table III)", 800, pe.total))
    best = best_point(explore())
    checks.append(
        _check_exact(
            "DSE optimum (loop order, tile, case)",
            "La, Tn=Tm=2, Case 6",
            f"{best.group}, Case {best.case}",
        )
    )

    # --- throughput (Fig. 13) — exact to 0.01 GOPS
    series = layer_performance_series()
    fig13_ok = all(
        abs(p.throughput_gops - PAPER_FIG13_THROUGHPUT_GOPS[p.index]) < 0.01
        for p in series
    )
    checks.append(
        ClaimCheck(
            claim="Per-layer throughput (Fig. 13, all 13 layers)",
            paper_value="1024 / 973.55 / 905.64 GOPS",
            measured_value="reproduced" if fig13_ok else "mismatch",
            tolerance="±0.01 GOPS",
            passed=fig13_ok,
        )
    )
    mean_tp = sum(p.throughput_gops for p in series) / len(series)
    checks.append(
        _check_rel(
            "Average throughput",
            PAPER_HEADLINE["average_throughput_gops"],
            mean_tp,
            rel=0.005,
        )
    )

    # --- area
    area_model = AreaModel.calibrated()
    checks.append(
        _check_rel(
            "Die area (mm^2)",
            PAPER_HEADLINE["area_mm2"],
            area_model.total_area_mm2(),
            rel=0.01,
        )
    )
    checks.append(
        _check_rel(
            "PWC:DWC area ratio", 1.7, area_model.pwc_to_dwc_ratio(),
            rel=0.02,
        )
    )

    # --- intermediate traffic (Fig. 3)
    fig3 = intermediate_access_report()
    checks.append(
        _check_rel(
            "Total intermediate-traffic reduction (Fig. 3)",
            34.7,
            fig3.total_reduction_percent,
            rel=0.20,
        )
    )

    # --- Table III advantage factors
    speedups = edea_speedups(build_comparison())
    checks.append(
        _check_rel(
            "Raw EE advantage vs ISVLSI'19 [16]",
            14.6,
            speedups["Chen et al. [16]"]["raw_ee"],
            rel=0.01,
        )
    )
    checks.append(
        _check_rel(
            "Normalized EE advantage vs ICCE-TW'21 [17]",
            3.11,
            speedups["Hsiao et al. [17]"]["normalized_ee"],
            rel=0.01,
        )
    )

    # --- baselines (the architectural argument)
    totals = dual_vs_baselines(MOBILENET_V1_CIFAR10_SPECS)
    checks.append(
        ClaimCheck(
            claim="Dual engine faster than serial and unified baselines",
            paper_value="dual < serial < unified",
            measured_value=(
                f"{totals['dual']:,} < {totals['serial_dual']:,} "
                f"< {totals['unified']:,} cycles"
            ),
            tolerance="ordering",
            passed=totals["dual"] < totals["serial_dual"] < totals["unified"],
        )
    )

    # --- measured (workload-dependent) claims
    if workload is not None:
        profile = build_efficiency_report(
            workload.layer_stats,
            workload.run_stats.clock_hz,
            mode="paper_profile",
        )
        checks.append(
            _check_rel(
                "Peak energy efficiency (paper-profile mode)",
                PAPER_HEADLINE["peak_ee_tops_w"],
                profile.peak_ee_tops_w,
                rel=0.30,
            )
        )
        checks.append(
            _check_rel(
                "Max layer power (paper-profile mode)",
                PAPER_HEADLINE["layer1_power_w"],
                profile.max_power_w,
                rel=0.05,
            )
        )
        checks.append(
            _check_rel(
                "Min layer power (paper-profile mode)",
                PAPER_HEADLINE["layer12_power_w"],
                profile.min_power_w,
                rel=0.15,
            )
        )
    return checks


def render_report(checks: list[ClaimCheck]) -> str:
    """Render the claim checks as a table with a summary line."""
    rows = [
        [
            "PASS" if c.passed else "FAIL",
            c.claim,
            c.paper_value,
            c.measured_value,
            c.tolerance,
        ]
        for c in checks
    ]
    passed = sum(c.passed for c in checks)
    table = render_table(
        f"Reproduction report: {passed}/{len(checks)} claims hold",
        ["Status", "Claim", "Paper", "Measured", "Tolerance"],
        rows,
    )
    return table
