"""Roofline / data-movement analysis of the DSC layers.

EDEA's motivation is data movement: "DWC operates as a channel-wise
convolution and PWC as an element-wise convolution, both exhibiting
limitations in data reuse".  This module quantifies that: per-layer
arithmetic intensity (MACs per externally moved byte), the bandwidth each
layer demands at the accelerator's compute rate, and where each layer
lands against a bandwidth roofline — with and without the direct DWC→PWC
transfer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.params import EDEA_CONFIG, ArchConfig
from ..errors import ConfigError
from ..nn.mobilenet import MOBILENET_V1_CIFAR10_SPECS, DSCLayerSpec
from ..sim.pipeline import layer_latency

__all__ = ["LayerRoofline", "roofline_analysis"]

BYTES_PER_ACTIVATION = 1  # int8
BYTES_PER_WEIGHT = 1  # int8
BYTES_PER_NONCONV_CONSTANT = 3  # 24-bit Q8.16


@dataclass(frozen=True)
class LayerRoofline:
    """Data-movement profile of one layer.

    Attributes:
        index: Layer index.
        macs: Useful MACs.
        external_bytes: Externally moved bytes (direct-transfer design).
        external_bytes_baseline: Same, with the intermediate spilled.
        arithmetic_intensity: MACs per byte (direct transfer).
        required_bandwidth_gbs: DRAM bandwidth needed to sustain the
            layer's compute at the accelerator clock, in GB/s.
    """

    index: int
    macs: int
    external_bytes: int
    external_bytes_baseline: int
    arithmetic_intensity: float
    required_bandwidth_gbs: float

    @property
    def intensity_baseline(self) -> float:
        """Arithmetic intensity without the intermediate buffer."""
        return self.macs / self.external_bytes_baseline

    def is_compute_bound(self, bandwidth_gbs: float) -> bool:
        """Whether the layer sustains full compute under ``bandwidth_gbs``."""
        if bandwidth_gbs <= 0:
            raise ConfigError(
                f"bandwidth must be positive (got {bandwidth_gbs})"
            )
        return self.required_bandwidth_gbs <= bandwidth_gbs


def _layer_bytes(spec: DSCLayerSpec, direct: bool) -> int:
    n = spec.out_size
    d, k = spec.in_channels, spec.out_channels
    act_in = spec.in_size**2 * d * BYTES_PER_ACTIVATION
    act_out = n * n * k * BYTES_PER_ACTIVATION
    intermediate = 0 if direct else 2 * n * n * d * BYTES_PER_ACTIVATION
    weights = (9 * d + d * k) * BYTES_PER_WEIGHT
    constants = 2 * (d + k) * BYTES_PER_NONCONV_CONSTANT
    return act_in + act_out + intermediate + weights + constants


def roofline_analysis(
    specs: list[DSCLayerSpec] | None = None,
    config: ArchConfig = EDEA_CONFIG,
) -> list[LayerRoofline]:
    """Compute the per-layer roofline profile.

    Args:
        specs: Layer geometry (defaults to MobileNetV1-CIFAR10).
        config: Architecture parameters (clock, tiles).
    """
    specs = specs if specs is not None else MOBILENET_V1_CIFAR10_SPECS
    profile = []
    for spec in specs:
        direct_bytes = _layer_bytes(spec, direct=True)
        baseline_bytes = _layer_bytes(spec, direct=False)
        latency_s = layer_latency(spec, config).latency_seconds(
            config.clock_hz
        )
        profile.append(
            LayerRoofline(
                index=spec.index,
                macs=spec.total_macs,
                external_bytes=direct_bytes,
                external_bytes_baseline=baseline_bytes,
                arithmetic_intensity=spec.total_macs / direct_bytes,
                required_bandwidth_gbs=direct_bytes / latency_s / 1e9,
            )
        )
    return profile
