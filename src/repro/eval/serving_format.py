"""Shared formatting helpers for the serving/control report renderers.

:mod:`repro.eval.serving` (data plane) and :mod:`repro.eval.control`
(SLO/energy control plane) render the same :class:`ServingReport`
shape; the unit conversions, report titles, and per-instance
utilization chart they previously each re-implemented live here once.
"""

from __future__ import annotations

from .charts import bar_chart

__all__ = ["ms", "mj", "report_title", "utilization_chart"]


def ms(seconds: float) -> float:
    """Seconds -> milliseconds, rounded for table display."""
    return round(1e3 * seconds, 3)


def mj(joules: float | None) -> float | None:
    """Joules -> millijoules, rounded; passes ``None`` through (the
    data plane carries no energy)."""
    return None if joules is None else round(1e3 * joules, 3)


def report_title(kind: str, report) -> str:
    """The headline-table title shared by every report renderer."""
    return (
        f"{kind} — mix={report.mix} arrival={report.arrival} "
        f"policy={report.policy} instances={report.instances}"
    )


def utilization_chart(report, caption: str) -> str:
    """The per-instance utilization bar chart (percent of makespan)."""
    return bar_chart(
        caption,
        [f"inst {i}" for i in range(report.instances)],
        [100.0 * u for u in report.utilization],
        unit="%",
    )
