"""Plain-text reports and charts for serving simulations.

Follows the evaluation harness idiom: :func:`render_table` for numbers,
the ASCII chart helpers for shape, everything printable from the CLI
and examples without plotting dependencies.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import EvaluationError
from ..serve.simulator import ServingReport
from .charts import bar_chart
from .obs import render_engine_counters
from .report import render_table
from .serving_format import ms as _ms
from .serving_format import report_title, utilization_chart

__all__ = [
    "render_serving_report",
    "render_serving_sweep",
    "render_throughput_latency",
]


def render_serving_report(report: ServingReport) -> str:
    """One serving run: headline numbers plus per-instance utilization."""
    headline = render_table(
        report_title("Serving report", report),
        ["Metric", "Value"],
        [
            ["requests", report.requests],
            ["offered QPS", round(report.offered_qps, 1)],
            ["fleet capacity QPS", round(report.capacity_qps, 1)],
            ["offered load", round(report.offered_load, 3)],
            ["sustained QPS", round(report.sustained_qps, 1)],
            ["latency mean (ms)", _ms(report.latency_mean_s)],
            ["latency p50 (ms)", _ms(report.latency_p50_s)],
            ["latency p95 (ms)", _ms(report.latency_p95_s)],
            ["latency p99 (ms)", _ms(report.latency_p99_s)],
            ["latency max (ms)", _ms(report.latency_max_s)],
            ["mean queue wait (ms)", _ms(report.mean_wait_s)],
            ["mean batch size", round(report.mean_batch_size, 2)],
            ["model switches", report.setups],
            [
                "mean utilization (makespan)",
                round(report.mean_utilization, 3),
            ],
            [
                "mean utilization (busy window)",
                round(report.mean_utilization_busy, 3),
            ],
        ],
    )
    utilization = utilization_chart(report, "Per-instance utilization")
    traffic = render_table(
        "Traffic mix",
        ["Model", "Requests"],
        [[name, count] for name, count in report.per_model_counts],
    )
    sections = [headline, utilization, traffic]
    engine = render_engine_counters(report)
    if engine:
        sections.append(engine)
    return "\n\n".join(sections)


def render_serving_sweep(reports: Sequence[ServingReport]) -> str:
    """Policy/fleet grid: one row per simulated scenario."""
    if not reports:
        raise EvaluationError("sweep rendering needs at least one report")
    rows = [
        [
            r.policy,
            r.instances,
            round(r.offered_qps, 1),
            round(r.sustained_qps, 1),
            _ms(r.latency_p50_s),
            _ms(r.latency_p99_s),
            round(100 * r.mean_utilization, 1),
            r.setups,
        ]
        for r in reports
    ]
    return render_table(
        f"Serving sweep ({len(reports)} scenarios, mix={reports[0].mix})",
        [
            "Policy",
            "Inst",
            "Offered QPS",
            "QPS",
            "p50 ms",
            "p99 ms",
            "Util %",
            "Switches",
        ],
        rows,
    )


def render_throughput_latency(reports: Sequence[ServingReport]) -> str:
    """Offered-load ladder: the throughput-latency curve as text."""
    if not reports:
        raise EvaluationError("curve rendering needs at least one report")
    ordered = sorted(reports, key=lambda r: r.offered_qps)
    table = render_table(
        f"Throughput-latency curve (instances={ordered[0].instances}, "
        f"policy={ordered[0].policy})",
        ["Offered QPS", "Load", "QPS", "p50 ms", "p95 ms", "p99 ms"],
        [
            [
                round(r.offered_qps, 1),
                round(r.offered_load, 3),
                round(r.sustained_qps, 1),
                _ms(r.latency_p50_s),
                _ms(r.latency_p95_s),
                _ms(r.latency_p99_s),
            ]
            for r in ordered
        ],
    )
    chart = bar_chart(
        "p99 latency vs offered QPS",
        [round(r.offered_qps, 1) for r in ordered],
        [1e3 * r.latency_p99_s for r in ordered],
        unit=" ms",
    )
    return "\n\n".join([table, chart])
