"""Width/resolution scaling sweeps over the timing model.

MobileNets are designed around two scaling knobs — the width multiplier
and the input resolution — and an accelerator evaluation should show how
the design behaves across them, not just at one point.  This sweep runs
the analytic pipeline (geometry → Eqs. 1-2 → throughput/utilization)
across both knobs.  Each grid point is independent, so the sweep routes
through the :class:`~repro.parallel.executor.ParallelExecutor`: serial
by default (deterministic, and a single point is pure arithmetic), with
optional process fan-out and persistent result caching for large grids.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.params import EDEA_CONFIG, ArchConfig
from ..errors import ConfigError
from ..nn.mobilenet import mobilenet_v1_specs
from ..parallel.cache import ResultCache
from ..parallel.executor import ParallelExecutor
from ..sim.pipeline import layer_latency

__all__ = ["SweepPoint", "evaluate_sweep_point", "width_resolution_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One (width, resolution) evaluation.

    Attributes:
        width: MobileNet width multiplier.
        resolution: Input spatial size.
        total_macs: Network DSC MACs.
        total_cycles: Network DSC latency in cycles.
        throughput_gops: Sustained ops rate at the configured clock.
        init_fraction: Share of cycles spent in pipeline initiation.
    """

    width: float
    resolution: int
    total_macs: int
    total_cycles: int
    throughput_gops: float
    init_fraction: float

    @property
    def latency_us(self) -> float:
        """Latency in microseconds at 1 GHz (cycles / 1000)."""
        return self.total_cycles / 1000.0


def evaluate_sweep_point(
    width: float, resolution: int, config: ArchConfig = EDEA_CONFIG
) -> SweepPoint:
    """Evaluate one grid point (module-level, hence pool-picklable)."""
    specs = mobilenet_v1_specs(input_size=resolution, width_multiplier=width)
    init = streaming = 0
    macs = 0
    for spec in specs:
        breakdown = layer_latency(spec, config)
        init += breakdown.init_cycles
        streaming += breakdown.streaming_cycles
        macs += spec.total_macs
    cycles = init + streaming
    return SweepPoint(
        width=width,
        resolution=resolution,
        total_macs=macs,
        total_cycles=cycles,
        throughput_gops=2.0 * macs * config.clock_hz / cycles / 1e9,
        init_fraction=init / cycles,
    )


def width_resolution_sweep(
    widths: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0),
    resolutions: tuple[int, ...] = (32, 64, 128, 224),
    config: ArchConfig = EDEA_CONFIG,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
) -> list[SweepPoint]:
    """Evaluate the timing model over a width x resolution grid.

    Args:
        widths: MobileNet width multipliers.
        resolutions: Input sizes (the CIFAR setup uses a stride-1 stem,
            so the first DSC layer sees the full resolution).
        config: Architecture parameters.
        jobs: Worker processes (1 = serial; None/0 = all CPUs).
        cache: Optional persistent result cache keyed per grid point.

    Returns:
        One :class:`SweepPoint` per grid entry, row-major by width —
        identical ordering and values for serial and parallel runs.
    """
    if not widths or not resolutions:
        raise ConfigError("sweep needs at least one width and resolution")
    grid = [
        (width, resolution, config)
        for width in widths
        for resolution in resolutions
    ]
    executor = ParallelExecutor(jobs=jobs, cache=cache)
    return executor.map_cached(
        "width_resolution_sweep", evaluate_sweep_point, grid
    )
