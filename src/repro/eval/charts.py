"""ASCII chart rendering for figure-style output in terminals.

The paper's evaluation is all bar/line charts; these helpers render the
reproduced series as text so the examples and CLI can show the *shape*
of each figure, not just its numbers.
"""

from __future__ import annotations

from ..errors import EvaluationError

__all__ = ["bar_chart", "grouped_bar_chart"]

_FULL = "#"


def _scaled(value: float, vmax: float, width: int) -> int:
    if vmax <= 0:
        return 0
    return max(0, min(width, round(width * value / vmax)))


def bar_chart(
    title: str,
    labels: list,
    values: list[float],
    width: int = 50,
    unit: str = "",
) -> str:
    """Render one series as horizontal bars.

    Args:
        title: Chart heading.
        labels: One label per bar (stringified).
        values: Non-negative bar values.
        width: Maximum bar width in characters.
        unit: Suffix appended to the printed value.
    """
    if len(labels) != len(values):
        raise EvaluationError(
            f"labels/values length mismatch: {len(labels)} vs {len(values)}"
        )
    if not values:
        raise EvaluationError("chart needs at least one value")
    if any(v < 0 for v in values):
        raise EvaluationError("bar values must be non-negative")
    if width < 1:
        raise EvaluationError(f"width must be >= 1 (got {width})")
    vmax = max(values)
    label_width = max(len(str(label)) for label in labels)
    lines = [title, "=" * len(title)]
    for label, value in zip(labels, values):
        bar = _FULL * _scaled(value, vmax, width)
        lines.append(
            f"{str(label).rjust(label_width)} | {bar.ljust(width)} "
            f"{value:,.2f}{unit}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    title: str,
    labels: list,
    series: dict[str, list[float]],
    width: int = 40,
) -> str:
    """Render several series side by side (one row group per label).

    Args:
        title: Chart heading.
        labels: One label per group.
        series: Mapping series name → values (all same length as labels).
    """
    if not series:
        raise EvaluationError("grouped chart needs at least one series")
    for name, values in series.items():
        if len(values) != len(labels):
            raise EvaluationError(
                f"series {name!r} has {len(values)} values for "
                f"{len(labels)} labels"
            )
        if any(v < 0 for v in values):
            raise EvaluationError("bar values must be non-negative")
    vmax = max(max(values) for values in series.values())
    label_width = max(len(str(label)) for label in labels)
    name_width = max(len(name) for name in series)
    lines = [title, "=" * len(title)]
    for i, label in enumerate(labels):
        for j, (name, values) in enumerate(series.items()):
            prefix = str(label).rjust(label_width) if j == 0 else (
                " " * label_width
            )
            bar = _FULL * _scaled(values[i], vmax, width)
            lines.append(
                f"{prefix} {name.ljust(name_width)} | "
                f"{bar.ljust(width)} {values[i]:,.2f}"
            )
    return "\n".join(lines)
