"""Dataset substrate: deterministic synthetic stand-in for CIFAR10."""

from .synthetic import SyntheticImageDataset, make_cifar10_like

__all__ = ["SyntheticImageDataset", "make_cifar10_like"]
