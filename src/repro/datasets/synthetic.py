"""Deterministic synthetic CIFAR10-like dataset.

The paper trains MobileNetV1 on CIFAR10; CIFAR10 itself is not available in
this offline environment, so we substitute a structured synthetic dataset
with the same tensor interface (32x32x3 images, 10 classes).  Each class is
a distinct low-frequency texture — a class-specific mixture of oriented
sinusoids plus a class-colour bias — with additive noise, so the task is
learnable (well above chance within a few epochs) yet non-trivial.  This
preserves what the evaluation needs from the dataset: realistic weight and
activation distributions and post-ReLU sparsity after training/quantization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError

__all__ = ["SyntheticImageDataset", "make_cifar10_like"]


@dataclass(frozen=True)
class _ClassRecipe:
    """Generative parameters for one class."""

    frequencies: np.ndarray  # (waves, 2) spatial frequencies
    phases: np.ndarray  # (waves,)
    amplitudes: np.ndarray  # (waves,)
    color: np.ndarray  # (3,) per-channel bias


class SyntheticImageDataset:
    """Class-conditional textured images with a CIFAR10-like interface.

    Attributes:
        images: ``(N, 3, size, size)`` float64 array, roughly zero-mean,
            unit-range (values mostly within [-1, 1.5]).
        labels: ``(N,)`` int64 class indices in ``[0, num_classes)``.
    """

    def __init__(
        self,
        num_samples: int,
        size: int = 32,
        num_classes: int = 10,
        noise_std: float = 0.25,
        waves_per_class: int = 4,
        seed: int = 0,
    ) -> None:
        if num_samples < 1:
            raise ConfigError(f"num_samples must be >= 1, got {num_samples}")
        if size < 4:
            raise ConfigError(f"size must be >= 4, got {size}")
        if num_classes < 2:
            raise ConfigError(f"num_classes must be >= 2, got {num_classes}")
        if noise_std < 0:
            raise ConfigError(f"noise_std must be >= 0, got {noise_std}")
        self.size = size
        self.num_classes = num_classes
        self.noise_std = noise_std
        rng = np.random.default_rng(seed)
        self._recipes = [
            self._make_recipe(rng, waves_per_class) for _ in range(num_classes)
        ]
        self.labels = rng.integers(0, num_classes, size=num_samples)
        self.images = np.stack(
            [self._render(int(label), rng) for label in self.labels]
        )

    @staticmethod
    def _make_recipe(
        rng: np.random.Generator, waves: int
    ) -> _ClassRecipe:
        return _ClassRecipe(
            frequencies=rng.uniform(0.5, 3.0, size=(waves, 2))
            * rng.choice([-1.0, 1.0], size=(waves, 2)),
            phases=rng.uniform(0, 2 * np.pi, size=waves),
            amplitudes=rng.uniform(0.3, 0.8, size=waves),
            color=rng.uniform(-0.4, 0.4, size=3),
        )

    def _render(self, label: int, rng: np.random.Generator) -> np.ndarray:
        recipe = self._recipes[label]
        coords = np.linspace(0, 2 * np.pi, self.size)
        yy, xx = np.meshgrid(coords, coords, indexing="ij")
        pattern = np.zeros((self.size, self.size))
        jitter = rng.uniform(0, 2 * np.pi, size=len(recipe.phases))
        for (fy, fx), phase, amp, jit in zip(
            recipe.frequencies, recipe.phases, recipe.amplitudes, jitter
        ):
            pattern += amp * np.sin(fy * yy + fx * xx + phase + jit)
        pattern /= max(len(recipe.phases), 1)
        image = np.empty((3, self.size, self.size))
        for ch in range(3):
            image[ch] = pattern + recipe.color[ch]
        image += rng.normal(0, self.noise_std, size=image.shape)
        return image

    def __len__(self) -> int:
        return self.images.shape[0]

    def split(self, train_fraction: float = 0.8) -> tuple:
        """Split into ((train_x, train_y), (test_x, test_y))."""
        if not 0.0 < train_fraction < 1.0:
            raise ConfigError(
                f"train_fraction must be in (0, 1), got {train_fraction}"
            )
        cut = max(1, int(len(self) * train_fraction))
        return (
            (self.images[:cut], self.labels[:cut]),
            (self.images[cut:], self.labels[cut:]),
        )


def make_cifar10_like(
    num_samples: int = 512, seed: int = 0
) -> SyntheticImageDataset:
    """Convenience constructor matching CIFAR10 geometry (32x32x3, 10 cls)."""
    return SyntheticImageDataset(
        num_samples=num_samples, size=32, num_classes=10, seed=seed
    )
