"""Hardware architecture model: engines, buffers, Non-Conv units,
external memory, and the top-level dual-engine accelerator (paper
Section III)."""

from .accelerator import DSCAccelerator, LayerRunStats
from .buffers import Buffer, BufferSet
from .dwc_engine import DWCEngine, DWCTileResult
from .memory import ExternalMemory
from .nonconv import NonConvUnitBank
from .params import EDEA_CONFIG, ArchConfig
from .pe import MACUnit, adder_tree_sum, mac_multiply
from .pwc_engine import PWCEngine, PWCTileResult
from .unified import (
    BaselineLatency,
    SerialDualEngineModel,
    UnifiedEngineModel,
    dual_vs_baselines,
)

__all__ = [
    "ArchConfig",
    "EDEA_CONFIG",
    "Buffer",
    "BufferSet",
    "ExternalMemory",
    "MACUnit",
    "mac_multiply",
    "adder_tree_sum",
    "DWCEngine",
    "DWCTileResult",
    "PWCEngine",
    "PWCTileResult",
    "NonConvUnitBank",
    "DSCAccelerator",
    "LayerRunStats",
    "UnifiedEngineModel",
    "SerialDualEngineModel",
    "BaselineLatency",
    "dual_vs_baselines",
]
