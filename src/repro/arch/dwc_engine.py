"""The depthwise-convolution engine (paper Fig. 5a).

The DWC engine holds ``Td = 8`` PE columns, one per channel of the current
channel group.  Each column computes a full 3x3 window per output element
through nine multipliers and an adder tree, and the engine produces one
``Tn x Tm x Td`` output tile per cycle — 288 MACs in flight.

The functional model computes exactly that arithmetic (vectorized over the
tile) and reports per-invocation statistics used by the utilization and
power analyses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from .params import ArchConfig

__all__ = ["DWCTileResult", "DWCEngine"]


@dataclass(frozen=True)
class DWCTileResult:
    """Output of one DWC engine invocation.

    Attributes:
        acc: int32 accumulators, shape ``(td, tn, tm)``.
        macs: MAC operations performed (always the full array size —
            the engine is fully utilized for every MobileNet layer).
        nonzero_input_fraction: Fraction of non-zero int8 inputs consumed
            (drives the activity-dependent power model).
    """

    acc: np.ndarray
    macs: int
    nonzero_input_fraction: float


class DWCEngine:
    """Functional model of the depthwise engine."""

    def __init__(self, config: ArchConfig) -> None:
        self.config = config
        self.invocations = 0
        self.total_macs = 0

    @property
    def macs_per_cycle(self) -> int:
        """Parallel MAC count (288 for the paper's configuration)."""
        return self.config.dwc_macs_per_cycle

    def compute_tile(
        self, ifmap_tile: np.ndarray, weights: np.ndarray, stride: int
    ) -> DWCTileResult:
        """Convolve one buffered input tile with the channel group kernels.

        Args:
            ifmap_tile: int8 inputs, shape ``(td, tr, tr)`` where ``tr``
                matches the configured output tile and stride (4x4 for
                stride 1, 5x5 for stride 2 with Tn=Tm=2).
            weights: int8 kernels, shape ``(td, k, k)``.
            stride: Convolution stride (1 or 2).

        Returns:
            :class:`DWCTileResult` with ``(td, tn, tm)`` accumulators.
        """
        cfg = self.config
        k = cfg.kernel_size
        expected_tr = (
            cfg.tn + k - 1 if stride == 1 else 2 * cfg.tn + k - 2
        )
        expected_tc = (
            cfg.tm + k - 1 if stride == 1 else 2 * cfg.tm + k - 2
        )
        if ifmap_tile.shape != (cfg.td, expected_tr, expected_tc):
            raise ShapeError(
                f"DWC engine expects ifmap tile "
                f"{(cfg.td, expected_tr, expected_tc)} for stride {stride}, "
                f"got {ifmap_tile.shape}"
            )
        if weights.shape != (cfg.td, k, k):
            raise ShapeError(
                f"DWC engine expects weights {(cfg.td, k, k)}, "
                f"got {weights.shape}"
            )
        x = ifmap_tile.astype(np.int64)
        w = weights.astype(np.int64)
        acc = np.zeros((cfg.td, cfg.tn, cfg.tm), dtype=np.int64)
        # Each (oy, ox) output element is one PE column pass: 9 multipliers
        # into an adder tree.  Vectorized over channels and window.
        for oy in range(cfg.tn):
            for ox in range(cfg.tm):
                window = x[
                    :,
                    oy * stride : oy * stride + k,
                    ox * stride : ox * stride + k,
                ]
                acc[:, oy, ox] = np.sum(window * w, axis=(1, 2))
        macs = cfg.dwc_macs_per_cycle
        self.invocations += 1
        self.total_macs += macs
        return DWCTileResult(
            acc=acc,
            macs=macs,
            nonzero_input_fraction=float(np.mean(ifmap_tile != 0)),
        )
