"""External (off-chip) memory model: backing store plus traffic counters.

The EDEA evaluation cares about *how many* external accesses happen, not
about DRAM timing, so this model is a dictionary of named tensors with
read/write accounting.  The direct DWC→PWC transfer claim (Fig. 3) is
validated by comparing these counters with and without the intermediate
buffer enabled.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError

__all__ = ["ExternalMemory"]


class ExternalMemory:
    """Named tensor store with access accounting.

    Attributes:
        activation_reads: int8 activation elements read.
        activation_writes: int8 activation elements written.
        weight_reads: int8 weight elements read.
        offline_reads: Non-Conv constant elements read (k/b pairs count
            as two entries, matching the offline buffer's sizing).
    """

    def __init__(self) -> None:
        self._tensors: dict[str, np.ndarray] = {}
        self.activation_reads = 0
        self.activation_writes = 0
        self.weight_reads = 0
        self.offline_reads = 0

    def store(self, name: str, tensor: np.ndarray) -> None:
        """Place a tensor in memory without counting traffic (DMA setup)."""
        self._tensors[name] = tensor

    def load(self, name: str) -> np.ndarray:
        """Fetch a stored tensor without counting traffic."""
        if name not in self._tensors:
            raise SimulationError(f"tensor {name!r} not in external memory")
        return self._tensors[name]

    def read_activations(self, count: int) -> None:
        """Count ``count`` activation element reads."""
        self._check(count)
        self.activation_reads += count

    def write_activations(self, count: int) -> None:
        """Count ``count`` activation element writes."""
        self._check(count)
        self.activation_writes += count

    def read_weights(self, count: int) -> None:
        """Count ``count`` weight element reads."""
        self._check(count)
        self.weight_reads += count

    def read_offline(self, count: int) -> None:
        """Count ``count`` Non-Conv constant reads."""
        self._check(count)
        self.offline_reads += count

    @staticmethod
    def _check(count: int) -> None:
        if count < 0:
            raise SimulationError(f"negative access count: {count}")

    @property
    def total_activation_accesses(self) -> int:
        """Activation reads + writes (the Fig. 3 metric)."""
        return self.activation_reads + self.activation_writes

    @property
    def total_accesses(self) -> int:
        """All counted external accesses."""
        return (
            self.activation_reads
            + self.activation_writes
            + self.weight_reads
            + self.offline_reads
        )

    def reset_counters(self) -> None:
        """Zero all counters (stored tensors untouched)."""
        self.activation_reads = 0
        self.activation_writes = 0
        self.weight_reads = 0
        self.offline_reads = 0
