"""The Non-Conv units (paper Section III-C, Fig. 6).

Eight Non-Conv units sit between the DWC and PWC engines; each converts one
channel of DWC accumulators into the PWC's int8 input domain with a single
fixed-point multiply-add (constants in Q8.16) followed by rounding, ReLU
clipping and int8 saturation.  A second bank of the same unit requantizes
the PWC output before write-back (the paper shows the unit generically; we
reuse the same datapath for both stages).

The folding mathematics lives in :mod:`repro.quant.fold`; this module wraps
it in a hardware-facing unit with operation accounting.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..quant.fold import NonConvParams
from .params import ArchConfig

__all__ = ["NonConvUnitBank"]


class NonConvUnitBank:
    """A bank of ``td`` Non-Conv units processing one channel group."""

    def __init__(self, config: ArchConfig) -> None:
        self.config = config
        self.invocations = 0
        self.total_ops = 0  # one multiply + one add per element

    def process(
        self,
        acc_tile: np.ndarray,
        params: NonConvParams,
        channel_offset: int,
    ) -> np.ndarray:
        """Convert an accumulator tile into int8 activations.

        Args:
            acc_tile: Integer accumulators, shape ``(channels, tn, tm)``
                where ``channels`` is at most the configured bank width for
                the DWC→PWC stage (``td``) or the PWC output stage (``tk``).
            params: Folded constants of the whole layer stage.
            channel_offset: Index of the tile's first channel within
                ``params``.

        Returns:
            int8 activations of the same shape.
        """
        channels = acc_tile.shape[0]
        bank_width = max(self.config.td, self.config.tk)
        if channels > bank_width:
            raise ShapeError(
                f"Non-Conv bank processes at most {bank_width} channels "
                f"per invocation (got {channels})"
            )
        if channel_offset + channels > params.channels:
            raise ShapeError(
                f"channel slice [{channel_offset}, "
                f"{channel_offset + channels}) exceeds the layer's "
                f"{params.channels} channels"
            )
        k_raw = np.asarray(params.k_raw)[
            channel_offset : channel_offset + channels
        ]
        b_raw = np.asarray(params.b_raw)[
            channel_offset : channel_offset + channels
        ]
        sliced = NonConvParams(
            k_raw=k_raw, b_raw=b_raw, relu=params.relu, fmt=params.fmt
        )
        out = sliced.apply(acc_tile, channel_axis=0)
        self.invocations += 1
        self.total_ops += 2 * acc_tile.size
        return out
