"""On-chip buffer models with capacity checking and access accounting.

Buffers do not model banking conflicts or latency (the pipeline model in
:mod:`repro.sim.pipeline` owns timing); they give the simulator capacity
enforcement and the read/write counters that the traffic analyses and the
power model consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import BufferError_

__all__ = ["Buffer", "BufferSet"]


@dataclass
class Buffer:
    """A single on-chip SRAM buffer.

    Attributes:
        name: Human-readable identifier (e.g. ``"dwc_ifmap"``).
        capacity_entries: Size in elements (int8 entries unless noted).
        reads: Total elements read so far.
        writes: Total elements written so far.
    """

    name: str
    capacity_entries: int
    reads: int = 0
    writes: int = 0
    _resident: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.capacity_entries < 1:
            raise BufferError_(
                f"buffer {self.name!r} needs positive capacity "
                f"(got {self.capacity_entries})"
            )

    def fill(self, entries: int) -> None:
        """Load ``entries`` elements, replacing the current contents."""
        if entries < 0:
            raise BufferError_(f"cannot fill {entries} entries")
        if entries > self.capacity_entries:
            raise BufferError_(
                f"buffer {self.name!r} overflow: filling {entries} entries "
                f"into capacity {self.capacity_entries}"
            )
        self._resident = entries
        self.writes += entries

    def read(self, entries: int) -> None:
        """Record ``entries`` element reads from the buffer."""
        if entries < 0:
            raise BufferError_(f"cannot read {entries} entries")
        if entries > self._resident:
            raise BufferError_(
                f"buffer {self.name!r} underflow: reading {entries} of "
                f"{self._resident} resident entries"
            )
        self.reads += entries

    def write(self, entries: int) -> None:
        """Record ``entries`` element writes (streaming, no replace)."""
        if entries < 0:
            raise BufferError_(f"cannot write {entries} entries")
        if self._resident + entries > self.capacity_entries:
            raise BufferError_(
                f"buffer {self.name!r} overflow: writing {entries} on top "
                f"of {self._resident} resident entries "
                f"(capacity {self.capacity_entries})"
            )
        self._resident += entries
        self.writes += entries

    def drain(self) -> None:
        """Mark the buffer empty (contents consumed downstream)."""
        self._resident = 0

    @property
    def resident(self) -> int:
        """Currently resident element count."""
        return self._resident

    @property
    def total_accesses(self) -> int:
        """Reads plus writes."""
        return self.reads + self.writes

    def reset_counters(self) -> None:
        """Zero the access counters (resident data untouched)."""
        self.reads = 0
        self.writes = 0


class BufferSet:
    """The accelerator's five on-chip buffers (paper Fig. 4)."""

    def __init__(
        self,
        dwc_ifmap_entries: int,
        dwc_weight_entries: int,
        offline_entries: int,
        intermediate_entries: int,
        pwc_weight_entries: int,
    ) -> None:
        self.dwc_ifmap = Buffer("dwc_ifmap", dwc_ifmap_entries)
        self.dwc_weight = Buffer("dwc_weight", dwc_weight_entries)
        self.offline = Buffer("offline", offline_entries)
        self.intermediate = Buffer("intermediate", intermediate_entries)
        self.pwc_weight = Buffer("pwc_weight", pwc_weight_entries)

    def all(self) -> list[Buffer]:
        """All buffers, DWC side first."""
        return [
            self.dwc_ifmap,
            self.dwc_weight,
            self.offline,
            self.intermediate,
            self.pwc_weight,
        ]

    def reset_counters(self) -> None:
        """Zero every buffer's counters."""
        for buffer in self.all():
            buffer.reset_counters()

    def access_summary(self) -> dict[str, int]:
        """Total accesses per buffer name."""
        return {buffer.name: buffer.total_accesses for buffer in self.all()}
