"""Processing-element primitives: int8 multiplier and adder tree.

These scalar models define the datapath semantics a single PE implements;
the engine models in :mod:`repro.arch.dwc_engine` / :mod:`repro.arch.pwc_engine`
compute the same arithmetic vectorized for speed, and the test suite checks
the two against each other.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..fixedpoint import clip_to_width

__all__ = ["mac_multiply", "adder_tree_sum", "MACUnit"]

PRODUCT_BITS = 16
"""int8 x int8 products fit in 16 bits (paper Fig. 6: "Int 16 Conv")."""

ACCUMULATOR_BITS = 32
"""Accumulator width; covers the deepest MobileNetV1 reduction (D=1024)."""


def mac_multiply(a: int, w: int) -> int:
    """One int8 x int8 multiplication, 16-bit product."""
    if not -128 <= a <= 127 or not -128 <= w <= 127:
        raise ShapeError(f"operands out of int8 range: {a}, {w}")
    product = int(a) * int(w)
    return int(clip_to_width(np.asarray(product), PRODUCT_BITS))


def adder_tree_sum(products) -> int:
    """Reduce products pairwise as a balanced adder tree would.

    The tree widens by one bit per level, so for the sizes used here
    (9 inputs for DWC, 8 for PWC) no intermediate saturation occurs; the
    final value is clipped to the accumulator width.
    """
    values = [int(p) for p in products]
    if not values:
        raise ShapeError("adder tree needs at least one input")
    while len(values) > 1:
        paired = []
        for i in range(0, len(values) - 1, 2):
            paired.append(values[i] + values[i + 1])
        if len(values) % 2:
            paired.append(values[-1])
        values = paired
    return int(clip_to_width(np.asarray(values[0]), ACCUMULATOR_BITS))


class MACUnit:
    """A multiply-accumulate unit with a 32-bit accumulator."""

    def __init__(self) -> None:
        self.accumulator = 0

    def clear(self) -> None:
        """Zero the accumulator."""
        self.accumulator = 0

    def mac(self, a: int, w: int) -> int:
        """Accumulate ``a * w``; returns the new accumulator value."""
        product = mac_multiply(a, w)
        self.accumulator = int(
            clip_to_width(
                np.asarray(self.accumulator + product), ACCUMULATOR_BITS
            )
        )
        return self.accumulator
