"""Architecture configuration of the EDEA accelerator.

The shipped defaults describe the paper's implemented design point (chosen
by the Section II DSE): loop order La, output tile Tn=Tm=2, channel tile
Td=8, kernel tile Tk=16, 3x3 depthwise kernels, 1 GHz clock, 9-cycle
pipeline initiation, and a DWC ifmap buffer that holds input for an 8x8
output tile per channel group (the tile bound that reproduces the paper's
per-layer latency/throughput exactly — see EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError
from ..nn.mobilenet import KERNEL_SIZE

__all__ = ["ArchConfig", "EDEA_CONFIG"]


@dataclass(frozen=True)
class ArchConfig:
    """Parameters of the dual-engine accelerator.

    Attributes:
        td: Input-channel tile (channels processed in parallel).
        tk: PWC kernel tile (kernels processed in parallel).
        tn: Output tile height.
        tm: Output tile width.
        kernel_size: Depthwise kernel extent (3 throughout MobileNet).
        clock_hz: Clock frequency after signoff (1 GHz at TT, 0.8 V).
        init_cycles: Pipeline initiation interval before the first PWC
            output of a tile (Fig. 7: 9 cycles).
        max_output_tile: Largest square output tile (per channel group)
            the DWC ifmap buffer supports; larger maps are split.
    """

    td: int = 8
    tk: int = 16
    tn: int = 2
    tm: int = 2
    kernel_size: int = KERNEL_SIZE
    clock_hz: float = 1.0e9
    init_cycles: int = 9
    max_output_tile: int = 8

    def __post_init__(self) -> None:
        for name in ("td", "tk", "tn", "tm", "kernel_size"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1")
        if self.clock_hz <= 0:
            raise ConfigError(f"clock_hz must be positive ({self.clock_hz})")
        if self.init_cycles < 0:
            raise ConfigError("init_cycles must be >= 0")
        if self.max_output_tile < self.tn or self.max_output_tile < self.tm:
            raise ConfigError(
                "max_output_tile must be at least the output tile size"
            )
        if self.max_output_tile % self.tn or self.max_output_tile % self.tm:
            raise ConfigError(
                "max_output_tile must be a multiple of Tn and Tm"
            )

    # --- engine sizes -------------------------------------------------

    @property
    def dwc_macs_per_cycle(self) -> int:
        """DWC engine MAC count (paper: 8*3*3*2*2 = 288)."""
        return self.td * self.kernel_size**2 * self.tn * self.tm

    @property
    def pwc_macs_per_cycle(self) -> int:
        """PWC engine MAC count (paper: 8*16*2*2 = 512)."""
        return self.td * self.tk * self.tn * self.tm

    @property
    def total_macs_per_cycle(self) -> int:
        """Total PE count (paper Table III: 800)."""
        return self.dwc_macs_per_cycle + self.pwc_macs_per_cycle

    # --- buffer geometry ----------------------------------------------

    @property
    def dwc_input_tile_stride1(self) -> int:
        """Buffered input extent for a max output tile at stride 1."""
        return self.max_output_tile + self.kernel_size - 1

    @property
    def dwc_input_tile_stride2(self) -> int:
        """Buffered input extent for a max output tile at stride 2."""
        return 2 * self.max_output_tile + self.kernel_size - 2

    @property
    def dwc_ifmap_buffer_entries(self) -> int:
        """DWC ifmap buffer capacity in int8 entries (worst-case tile)."""
        extent = max(self.dwc_input_tile_stride1, self.dwc_input_tile_stride2)
        return extent * extent * self.td

    @property
    def intermediate_buffer_entries(self) -> int:
        """Intermediate (DWC→PWC) buffer capacity in int8 entries."""
        return self.tn * self.tm * self.td

    @property
    def dwc_weight_buffer_entries(self) -> int:
        """DWC weight buffer capacity in int8 entries."""
        return self.td * self.kernel_size**2

    @property
    def pwc_weight_buffer_entries(self) -> int:
        """PWC weight buffer capacity in int8 entries."""
        return self.td * self.tk

    @property
    def offline_buffer_entries(self) -> int:
        """Offline (Non-Conv k/b constants) buffer capacity in entries.

        One (k, b) pair per channel of the current Td group.
        """
        return 2 * self.td

    # --- derived performance ------------------------------------------

    @property
    def peak_ops_per_second(self) -> float:
        """Peak throughput if every MAC fired every cycle (2 ops/MAC)."""
        return 2.0 * self.total_macs_per_cycle * self.clock_hz

    @property
    def cycle_time_s(self) -> float:
        """Clock period in seconds."""
        return 1.0 / self.clock_hz

    def spatial_tiles(self, out_size: int) -> int:
        """Number of ifmap tiles a layer with output ``out_size`` needs."""
        return math.ceil(out_size / self.max_output_tile) ** 2


EDEA_CONFIG = ArchConfig()
"""The paper's implemented design point."""
