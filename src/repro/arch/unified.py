"""Unified single-engine baseline (the design EDEA argues against).

The paper's introduction describes two weaker alternatives to its dual
engine: *unified* convolution engines that run DWC and PWC on the same PE
array ([2][3][4] — "achieving full utilization of processing elements for
both DWC and PWC remains a challenge") and *separate-but-serial* engines
([6] — "does not allow for parallel execution of DWC and PWC").  This
module implements both as executable timing baselines over the same
functional substrate, so the dual-engine advantage can be *measured*
instead of quoted:

* ``UnifiedEngineModel`` — one PE array of ``pe_count`` MACs executes the
  DWC phase, writes the intermediate map, then executes the PWC phase.
  A fixed array cannot be fully engaged by both dataflows: depthwise
  convolution exposes window-parallel reduction (no cross-channel dot
  products) while pointwise exposes channel reduction, so lanes wired
  for one contribute nothing to the other.  The defaults partition the
  800 lanes exactly as EDEA's own design-space exploration sized them —
  288 depthwise-capable and 512 pointwise-capable — making the baseline
  an iso-resource, iso-geometry array whose only difference is that the
  two partitions cannot run *concurrently* and the intermediate map must
  round-trip a buffer between phases (each phase pays its own pipeline
  fill).
* ``SerialDualEngineModel`` — EDEA's own two engines but ping-ponged
  (no overlap): per tile, DWC runs to completion before PWC starts.

Functional results are identical to the dual-engine accelerator by
construction (same arithmetic); only the timing differs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError
from ..nn.mobilenet import DSCLayerSpec
from .params import EDEA_CONFIG, ArchConfig

__all__ = [
    "BaselineLatency",
    "UnifiedEngineModel",
    "SerialDualEngineModel",
    "dual_vs_baselines",
]


@dataclass(frozen=True)
class BaselineLatency:
    """Latency decomposition of a baseline run of one layer.

    Attributes:
        dwc_cycles: Cycles spent in the depthwise phase.
        pwc_cycles: Cycles spent in the pointwise phase.
        overhead_cycles: Initiation / phase-switch cycles.
    """

    dwc_cycles: int
    pwc_cycles: int
    overhead_cycles: int

    @property
    def total_cycles(self) -> int:
        """Total layer latency in cycles."""
        return self.dwc_cycles + self.pwc_cycles + self.overhead_cycles


class UnifiedEngineModel:
    """One shared PE array, DWC then PWC, intermediate spilled.

    Args:
        pe_count: MAC lanes of the unified array (default: EDEA's 800,
            for an iso-resource comparison).
        dwc_usable_fraction: Fraction of lanes a depthwise pass can
            engage (default 288/800 — the depthwise-capable partition).
        pwc_usable_fraction: Fraction of lanes a pointwise pass can
            engage (default 512/800 — the pointwise-capable partition).
        config: Tiling/initiation parameters shared with the dual design.
    """

    def __init__(
        self,
        pe_count: int = 800,
        dwc_usable_fraction: float = 288.0 / 800.0,
        pwc_usable_fraction: float = 512.0 / 800.0,
        config: ArchConfig = EDEA_CONFIG,
    ) -> None:
        if pe_count < 1:
            raise ConfigError(f"pe_count must be >= 1 (got {pe_count})")
        for name, value in (
            ("dwc_usable_fraction", dwc_usable_fraction),
            ("pwc_usable_fraction", pwc_usable_fraction),
        ):
            if not 0.0 < value <= 1.0:
                raise ConfigError(
                    f"{name} must be in (0, 1] (got {value})"
                )
        self.pe_count = pe_count
        self.dwc_usable_fraction = dwc_usable_fraction
        self.pwc_usable_fraction = pwc_usable_fraction
        self.config = config

    def layer_latency(self, spec: DSCLayerSpec) -> BaselineLatency:
        """Phase-serial latency of one layer on the unified array."""
        cfg = self.config
        dwc_rate = self.pe_count * self.dwc_usable_fraction
        pwc_rate = self.pe_count * self.pwc_usable_fraction
        dwc_cycles = math.ceil(spec.dwc_macs / dwc_rate)
        pwc_cycles = math.ceil(spec.pwc_macs / pwc_rate)
        # one initiation per (ifmap tile, channel group) per phase: the
        # pipeline refills when the array switches dataflow, and the
        # intermediate map round-trips the buffer between the phases
        tiles = cfg.spatial_tiles(spec.out_size)
        groups = math.ceil(spec.in_channels / cfg.td)
        overhead = 2 * cfg.init_cycles * tiles * groups
        return BaselineLatency(
            dwc_cycles=dwc_cycles,
            pwc_cycles=pwc_cycles,
            overhead_cycles=overhead,
        )

    def average_utilization(self, spec: DSCLayerSpec) -> float:
        """Useful MACs per cycle over the run, relative to ``pe_count``."""
        latency = self.layer_latency(spec)
        return spec.total_macs / (latency.total_cycles * self.pe_count)


class SerialDualEngineModel:
    """EDEA's engines without overlap: DWC completes before PWC starts.

    Isolates the *parallel operation* contribution from the *dedicated
    engine* contribution: same engines, same 100% spatial utilization
    while active, but phase-serial like [6].
    """

    def __init__(self, config: ArchConfig = EDEA_CONFIG) -> None:
        self.config = config

    def layer_latency(self, spec: DSCLayerSpec) -> BaselineLatency:
        """Serialized latency of one layer."""
        cfg = self.config
        positions = math.ceil(spec.out_size / cfg.tn) * math.ceil(
            spec.out_size / cfg.tm
        )
        groups = math.ceil(spec.in_channels / cfg.td)
        kernel_groups = math.ceil(spec.out_channels / cfg.tk)
        dwc_cycles = positions * groups  # one position tile per cycle
        pwc_cycles = positions * groups * kernel_groups
        tiles = cfg.spatial_tiles(spec.out_size)
        overhead = cfg.init_cycles * tiles * groups
        return BaselineLatency(
            dwc_cycles=dwc_cycles,
            pwc_cycles=pwc_cycles,
            overhead_cycles=overhead,
        )


def dual_vs_baselines(
    specs: list[DSCLayerSpec],
    config: ArchConfig = EDEA_CONFIG,
) -> dict[str, int]:
    """Whole-network cycle totals: dual engine vs the two baselines.

    Returns a dict with keys ``dual``, ``serial_dual`` and ``unified``.
    """
    from ..sim.pipeline import layer_latency as dual_latency

    if not specs:
        raise ConfigError("no layer specs supplied")
    unified = UnifiedEngineModel(config=config)
    serial = SerialDualEngineModel(config=config)
    totals = {"dual": 0, "serial_dual": 0, "unified": 0}
    for spec in specs:
        totals["dual"] += dual_latency(spec, config).total_cycles
        totals["serial_dual"] += serial.layer_latency(spec).total_cycles
        totals["unified"] += unified.layer_latency(spec).total_cycles
    return totals
