"""The pointwise-convolution engine (paper Fig. 5b).

The PWC engine holds ``Tk x Tn x Tm = 64`` PEs of four multipliers each —
512 MACs per cycle.  One invocation consumes a ``Tn x Tm x Td`` input tile
(the DWC output delivered through the intermediate buffer) and a
``Tk x Td`` weight tile, producing partial sums for ``Tk`` output channels
over the ``Tn x Tm`` positions; partial sums accumulate across channel
groups in the psum registers until the reduction over ``D`` completes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from .params import ArchConfig

__all__ = ["PWCTileResult", "PWCEngine"]


@dataclass(frozen=True)
class PWCTileResult:
    """Output of one PWC engine invocation.

    Attributes:
        psum: int32 partial sums for this channel group, ``(tk, tn, tm)``.
        macs: MAC operations performed.
        nonzero_input_fraction: Fraction of non-zero int8 inputs consumed.
    """

    psum: np.ndarray
    macs: int
    nonzero_input_fraction: float


class PWCEngine:
    """Functional model of the pointwise engine."""

    def __init__(self, config: ArchConfig) -> None:
        self.config = config
        self.invocations = 0
        self.total_macs = 0

    @property
    def macs_per_cycle(self) -> int:
        """Parallel MAC count (512 for the paper's configuration)."""
        return self.config.pwc_macs_per_cycle

    def compute_group(
        self, ifmap_tile: np.ndarray, weights: np.ndarray
    ) -> PWCTileResult:
        """Multiply one intermediate tile with one kernel-group tile.

        Args:
            ifmap_tile: int8 PWC inputs, shape ``(td, tn, tm)``.
            weights: int8 kernel slice, shape ``(tk, td)``.

        Returns:
            :class:`PWCTileResult` with ``(tk, tn, tm)`` partial sums.
        """
        cfg = self.config
        if ifmap_tile.shape != (cfg.td, cfg.tn, cfg.tm):
            raise ShapeError(
                f"PWC engine expects ifmap tile {(cfg.td, cfg.tn, cfg.tm)}, "
                f"got {ifmap_tile.shape}"
            )
        if weights.shape != (cfg.tk, cfg.td):
            raise ShapeError(
                f"PWC engine expects weights {(cfg.tk, cfg.td)}, "
                f"got {weights.shape}"
            )
        x = ifmap_tile.astype(np.int64)
        w = weights.astype(np.int64)
        psum = np.einsum("kd,dnm->knm", w, x, optimize=True)
        macs = cfg.pwc_macs_per_cycle
        self.invocations += 1
        self.total_macs += macs
        return PWCTileResult(
            psum=psum,
            macs=macs,
            nonzero_input_fraction=float(np.mean(ifmap_tile != 0)),
        )
