"""Top-level dual-engine DSC accelerator (paper Fig. 4).

The accelerator executes one quantized DSC layer at a time with the La
dataflow the DSE selected.  The loop hierarchy, outermost first:

1. **channel group** (``ceil(D/Td)`` iterations, Eq. 2),
2. **ifmap tile** — the DWC ifmap buffer holds input for at most an
   ``8 x 8`` output patch per channel group, so larger maps are split
   (Eq. 2's "number of tiled ifmaps"),
3. **tile position** — the ``Tn x Tm`` output element the DWC engine
   produces each cycle (Loop3),
4. **kernel group** — ``ceil(K/Tk)`` PWC cycles consuming the buffered
   DWC output through the intermediate buffer (Loop5 innermost at the
   cycle level; PWC weights for the whole ``K`` of the current channel
   group are resident in the PWC weight buffer).

Cycle accounting per (channel group, tile): ``init_cycles`` of pipeline
fill plus ``positions x ceil(K/Tk)`` streaming cycles, which reproduces the
paper's Eqs. 1-2 exactly (validated against :mod:`repro.sim.pipeline`).

The functional result is bit-exact against the int8 reference model
(:class:`repro.quant.QuantizedMobileNet`), which the integration tests
assert for every MobileNetV1 layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import ShapeError, SimulationError
from ..quant.qmodel import QuantizedDSCLayer
from .buffers import BufferSet
from .dwc_engine import DWCEngine
from .memory import ExternalMemory
from .nonconv import NonConvUnitBank
from .params import EDEA_CONFIG, ArchConfig
from .pwc_engine import PWCEngine

__all__ = ["LayerRunStats", "DSCAccelerator"]


@dataclass
class LayerRunStats:
    """Measurements from running one DSC layer on the accelerator.

    Attributes:
        layer_index: The layer's index in the network (0..12).
        cycles: Total clock cycles (Eq. 2's latency in cycles).
        init_cycle_total: Cycles spent in pipeline initiation.
        dwc_busy_cycles: Cycles with the DWC engine computing.
        pwc_busy_cycles: Cycles with the PWC engine computing.
        dwc_macs: Useful MACs executed by the DWC engine.
        pwc_macs: Useful MACs executed by the PWC engine.
        dwc_input_zeros / dwc_input_elements: Zero statistics of the int8
            values streamed into the DWC engine (halo re-reads included).
        pwc_input_zeros / pwc_input_elements: Same for the PWC engine.
        spatial_tiles: Ifmap tiles the layer was split into.
        channel_groups: ``ceil(D/Td)``.
        kernel_groups: ``ceil(K/Tk)``.
        buffer_accesses: Per-buffer on-chip access totals.
        external: Counter snapshot of external memory traffic.
    """

    layer_index: int
    cycles: int = 0
    init_cycle_total: int = 0
    dwc_busy_cycles: int = 0
    pwc_busy_cycles: int = 0
    dwc_macs: int = 0
    pwc_macs: int = 0
    dwc_input_zeros: int = 0
    dwc_input_elements: int = 0
    pwc_input_zeros: int = 0
    pwc_input_elements: int = 0
    spatial_tiles: int = 0
    channel_groups: int = 0
    kernel_groups: int = 0
    buffer_accesses: dict = field(default_factory=dict)
    external: dict = field(default_factory=dict)

    @property
    def total_macs(self) -> int:
        """DWC + PWC MACs (the layer's useful work)."""
        return self.dwc_macs + self.pwc_macs

    @property
    def total_ops(self) -> int:
        """Operations at 2 per MAC (the paper's GOPS convention)."""
        return 2 * self.total_macs

    @property
    def dwc_utilization(self) -> float:
        """Temporal occupancy of the DWC engine."""
        return self.dwc_busy_cycles / self.cycles if self.cycles else 0.0

    @property
    def pwc_utilization(self) -> float:
        """Temporal occupancy of the PWC engine."""
        return self.pwc_busy_cycles / self.cycles if self.cycles else 0.0

    @property
    def dwc_zero_fraction(self) -> float:
        """Zero fraction of DWC engine input activations (Fig. 11)."""
        if not self.dwc_input_elements:
            return 0.0
        return self.dwc_input_zeros / self.dwc_input_elements

    @property
    def pwc_zero_fraction(self) -> float:
        """Zero fraction of PWC engine input activations (Fig. 11)."""
        if not self.pwc_input_elements:
            return 0.0
        return self.pwc_input_zeros / self.pwc_input_elements

    def latency_seconds(self, clock_hz: float) -> float:
        """Wall-clock latency at a given clock."""
        return self.cycles / clock_hz

    def throughput_ops_per_second(self, clock_hz: float) -> float:
        """Achieved throughput (total ops / latency), Fig. 13's metric."""
        if self.cycles == 0:
            return 0.0
        return self.total_ops * clock_hz / self.cycles


class DSCAccelerator:
    """Functional + cycle-level model of the EDEA accelerator."""

    def __init__(
        self,
        config: ArchConfig = EDEA_CONFIG,
        direct_transfer: bool = True,
    ) -> None:
        """Create an accelerator instance.

        Args:
            config: Architecture parameters.
            direct_transfer: When True (the paper's design), DWC output
                flows to the PWC through the on-chip intermediate buffer;
                when False, the intermediate tensor is spilled to and
                re-fetched from external memory (the Fig. 3 baseline).
        """
        self.config = config
        self.direct_transfer = direct_transfer
        self.dwc_engine = DWCEngine(config)
        self.pwc_engine = PWCEngine(config)
        self.nonconv = NonConvUnitBank(config)
        self.memory = ExternalMemory()
        self._pwc_weight_capacity_entries = 0  # sized per layer below

    def _make_buffers(self, out_channels: int) -> BufferSet:
        cfg = self.config
        # The PWC weight buffer holds the whole K x Td slice of the current
        # channel group so kernel groups iterate without external refetch.
        return BufferSet(
            dwc_ifmap_entries=cfg.dwc_ifmap_buffer_entries,
            dwc_weight_entries=cfg.dwc_weight_buffer_entries,
            offline_entries=cfg.offline_buffer_entries,
            intermediate_entries=cfg.intermediate_buffer_entries,
            pwc_weight_entries=max(out_channels * cfg.td, cfg.td * cfg.tk),
        )

    def run_layer(
        self, layer: QuantizedDSCLayer, x_q: np.ndarray
    ) -> tuple[np.ndarray, LayerRunStats]:
        """Execute one DSC layer.

        Args:
            layer: Quantized layer (weights + folded Non-Conv constants).
            x_q: int8 input feature map, shape ``(D, H, W)``.

        Returns:
            ``(out_q, stats)`` where ``out_q`` is the int8 ``(K, N, N)``
            output and ``stats`` the cycle/traffic measurements.
        """
        cfg = self.config
        spec = layer.spec
        d, k_total = spec.in_channels, spec.out_channels
        if x_q.dtype != np.int8:
            raise ShapeError(f"input must be int8, got {x_q.dtype}")
        if x_q.shape != (d, spec.in_size, spec.in_size):
            raise ShapeError(
                f"input shape {x_q.shape} != "
                f"{(d, spec.in_size, spec.in_size)}"
            )
        if d % cfg.td:
            raise SimulationError(
                f"channel count {d} not a multiple of Td={cfg.td}"
            )
        if k_total % cfg.tk:
            raise SimulationError(
                f"kernel count {k_total} not a multiple of Tk={cfg.tk}"
            )

        stride = spec.stride
        out_size = spec.out_size
        n_channel_groups = d // cfg.td
        n_kernel_groups = k_total // cfg.tk
        buffers = self._make_buffers(k_total)
        stats = LayerRunStats(
            layer_index=spec.index,
            channel_groups=n_channel_groups,
            kernel_groups=n_kernel_groups,
        )

        self.memory.store("ifmap", x_q)
        # Snapshot the external counters so stats.external reports this
        # layer's traffic even when one accelerator runs a whole network.
        ext_before = (
            self.memory.activation_reads,
            self.memory.activation_writes,
            self.memory.weight_reads,
            self.memory.offline_reads,
        )
        padded = np.pad(
            x_q, ((0, 0), (1, 1), (1, 1)), mode="constant"
        )

        # Output psums accumulate across channel groups (int64, saturation
        # is impossible for int8 operands at MobileNet sizes — see tests).
        psum = np.zeros((k_total, out_size, out_size), dtype=np.int64)

        # Spatial tiling: the ifmap buffer covers up to max_output_tile
        # square outputs per load.
        tile_edge = cfg.max_output_tile
        tile_starts = list(range(0, out_size, tile_edge))
        stats.spatial_tiles = len(tile_starts) ** 2

        mid_spill: np.ndarray | None = None
        if not self.direct_transfer:
            mid_spill = np.zeros((d, out_size, out_size), dtype=np.int8)

        for group in range(n_channel_groups):
            ch0 = group * cfg.td
            dwc_w = layer.dwc_weight[ch0 : ch0 + cfg.td]
            pwc_w_slice = layer.pwc_weight[:, ch0 : ch0 + cfg.td]

            # Per-group loads: DWC weights, Non-Conv constants, and the
            # full K x Td PWC weight slice (resident across tiles).
            buffers.dwc_weight.fill(dwc_w.size)
            self.memory.read_weights(dwc_w.size)
            buffers.offline.fill(2 * cfg.td)
            self.memory.read_offline(2 * cfg.td)
            buffers.pwc_weight.fill(pwc_w_slice.size)
            self.memory.read_weights(pwc_w_slice.size)

            for ty in tile_starts:
                for tx in tile_starts:
                    tile_h = min(tile_edge, out_size - ty)
                    tile_w = min(tile_edge, out_size - tx)
                    self._run_tile(
                        layer,
                        padded,
                        psum,
                        mid_spill,
                        buffers,
                        stats,
                        group,
                        (ty, tx),
                        (tile_h, tile_w),
                        stride,
                    )

        # Reduction over D complete: requantize PWC output and write back.
        out_q = np.empty((k_total, out_size, out_size), dtype=np.int8)
        for kg in range(n_kernel_groups):
            k0 = kg * cfg.tk
            out_q[k0 : k0 + cfg.tk] = self.nonconv.process(
                psum[k0 : k0 + cfg.tk], layer.pwc_nonconv, k0
            )
        self.memory.write_activations(out_q.size)
        self.memory.store("ofmap", out_q)

        stats.buffer_accesses = buffers.access_summary()
        stats.external = {
            "activation_reads": self.memory.activation_reads - ext_before[0],
            "activation_writes": self.memory.activation_writes - ext_before[1],
            "weight_reads": self.memory.weight_reads - ext_before[2],
            "offline_reads": self.memory.offline_reads - ext_before[3],
        }
        return out_q, stats

    def _run_tile(
        self,
        layer: QuantizedDSCLayer,
        padded: np.ndarray,
        psum: np.ndarray,
        mid_spill: np.ndarray | None,
        buffers: BufferSet,
        stats: LayerRunStats,
        group: int,
        tile_origin: tuple[int, int],
        tile_shape: tuple[int, int],
        stride: int,
    ) -> None:
        """Process one (channel group, ifmap tile) pair."""
        cfg = self.config
        ty, tx = tile_origin
        tile_h, tile_w = tile_shape
        ch0 = group * cfg.td
        k = cfg.kernel_size

        # Load the tile's input (with halo) into the ifmap buffer.
        ext_h = (tile_h - 1) * stride + k
        ext_w = (tile_w - 1) * stride + k
        tile_in = padded[
            ch0 : ch0 + cfg.td,
            ty * stride : ty * stride + ext_h,
            tx * stride : tx * stride + ext_w,
        ]
        buffers.dwc_ifmap.fill(tile_in.size)
        self.memory.read_activations(tile_in.size)

        stats.cycles += cfg.init_cycles
        stats.init_cycle_total += cfg.init_cycles

        n_kernel_groups = stats.kernel_groups
        pos_rows = math.ceil(tile_h / cfg.tn)
        pos_cols = math.ceil(tile_w / cfg.tm)
        dwc_w = layer.dwc_weight[ch0 : ch0 + cfg.td]

        for py in range(pos_rows):
            for px in range(pos_cols):
                in_y = py * cfg.tn * stride
                in_x = px * cfg.tm * stride
                span_y = (cfg.tn - 1) * stride + k
                span_x = (cfg.tm - 1) * stride + k
                window = tile_in[
                    :, in_y : in_y + span_y, in_x : in_x + span_x
                ]
                resident_elements = window.size
                if window.shape != (cfg.td, span_y, span_x):
                    # Edge positions of odd-sized maps: pad with zeros to
                    # the engine's fixed geometry (outputs beyond the map
                    # are discarded below).  Only the real elements are
                    # buffer reads; the zero fill is wired, not fetched.
                    full = np.zeros(
                        (cfg.td, span_y, span_x), dtype=window.dtype
                    )
                    full[
                        :, : window.shape[1], : window.shape[2]
                    ] = window
                    window = full

                buffers.dwc_ifmap.read(resident_elements)
                buffers.dwc_weight.read(dwc_w.size)
                result = self.dwc_engine.compute_tile(window, dwc_w, stride)
                stats.dwc_busy_cycles += 1
                stats.dwc_macs += result.macs
                stats.dwc_input_elements += window.size
                stats.dwc_input_zeros += int(
                    round(window.size * (1 - result.nonzero_input_fraction))
                )

                # Non-Conv: DWC accumulators -> int8 PWC input tile.
                buffers.offline.read(2 * cfg.td)
                mid_tile = self.nonconv.process(
                    result.acc, layer.dwc_nonconv, ch0
                )

                oy = ty + py * cfg.tn
                ox = tx + px * cfg.tm
                rows = min(cfg.tn, layer.spec.out_size - oy)
                cols = min(cfg.tm, layer.spec.out_size - ox)

                if self.direct_transfer:
                    buffers.intermediate.fill(mid_tile.size)
                else:
                    # Baseline: intermediate spilled to external memory
                    # and fetched back for the PWC.
                    assert mid_spill is not None
                    self.memory.write_activations(rows * cols * cfg.td)
                    mid_spill[
                        ch0 : ch0 + cfg.td, oy : oy + rows, ox : ox + cols
                    ] = mid_tile[:, :rows, :cols]
                    self.memory.read_activations(rows * cols * cfg.td)

                for kg in range(n_kernel_groups):
                    k0 = kg * cfg.tk
                    pwc_w = layer.pwc_weight[
                        k0 : k0 + cfg.tk, ch0 : ch0 + cfg.td
                    ]
                    if self.direct_transfer:
                        buffers.intermediate.read(mid_tile.size)
                    buffers.pwc_weight.read(pwc_w.size)
                    pwc_res = self.pwc_engine.compute_group(mid_tile, pwc_w)
                    stats.pwc_busy_cycles += 1
                    stats.pwc_macs += pwc_res.macs
                    stats.pwc_input_elements += mid_tile.size
                    stats.pwc_input_zeros += int(
                        round(
                            mid_tile.size
                            * (1 - pwc_res.nonzero_input_fraction)
                        )
                    )
                    psum[
                        k0 : k0 + cfg.tk, oy : oy + rows, ox : ox + cols
                    ] += pwc_res.psum[:, :rows, :cols]
                    stats.cycles += 1
                if self.direct_transfer:
                    buffers.intermediate.drain()
