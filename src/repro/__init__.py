"""EDEA reproduction: dual-engine depthwise-separable-convolution accelerator.

A functional and cycle-level Python reproduction of *"EDEA: Efficient
Dual-Engine Accelerator for Depthwise Separable Convolution with Direct
Data Transfer"* (Chen et al., SOCC 2024), including every substrate the
evaluation depends on:

* :mod:`repro.nn` — NumPy MobileNetV1 + training,
* :mod:`repro.quant` — int8/LSQ quantization and Non-Conv folding,
* :mod:`repro.datasets` — synthetic CIFAR10 stand-in,
* :mod:`repro.dse` — the Section II design-space exploration,
* :mod:`repro.arch` / :mod:`repro.sim` — the dual-engine accelerator and
  its cycle-accurate pipeline model,
* :mod:`repro.power` — calibrated power/area/technology-scaling models,
* :mod:`repro.eval` — one reproducible experiment per paper figure/table,
* :mod:`repro.parallel` — process fan-out and persistent result caching
  for sweeps, DSE candidates, and experiments.

Quickstart::

    from repro import prepare_workload, run_experiment

    workload = prepare_workload(width_multiplier=0.25)   # fast demo size
    print(run_experiment("fig13").text)                  # paper Fig. 13
"""

from .arch import ArchConfig, DSCAccelerator, EDEA_CONFIG, LayerRunStats
from .dse import LoopOrder, TilingConfig, best_point, explore
from .errors import (
    BufferError_,
    ConfigError,
    EvaluationError,
    FixedPointError,
    QuantizationError,
    ReproError,
    ShapeError,
    SimulationError,
)
from .eval import (
    ExperimentWorkload,
    list_experiments,
    prepare_workload,
    run_experiment,
)
from .nn import (
    MOBILENET_V1_CIFAR10_SPECS,
    DSCLayerSpec,
    build_mobilenet_v1,
    mobilenet_v1_specs,
)
from .parallel import (
    DesignPointResult,
    ParallelExecutor,
    ResultCache,
    design_point_sweep,
)
from .power import AreaModel, PowerModel, ScalingModel
from .quant import QuantizedMobileNet, quantize_mobilenet
from .sim import AcceleratorRunner, layer_latency

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigError",
    "ShapeError",
    "QuantizationError",
    "FixedPointError",
    "SimulationError",
    "BufferError_",
    "EvaluationError",
    # model/geometry
    "DSCLayerSpec",
    "MOBILENET_V1_CIFAR10_SPECS",
    "mobilenet_v1_specs",
    "build_mobilenet_v1",
    # quantization
    "QuantizedMobileNet",
    "quantize_mobilenet",
    # DSE
    "LoopOrder",
    "TilingConfig",
    "explore",
    "best_point",
    # architecture & simulation
    "ArchConfig",
    "EDEA_CONFIG",
    "DSCAccelerator",
    "LayerRunStats",
    "AcceleratorRunner",
    "layer_latency",
    # parallel execution & caching
    "ParallelExecutor",
    "ResultCache",
    "DesignPointResult",
    "design_point_sweep",
    # power
    "PowerModel",
    "AreaModel",
    "ScalingModel",
    # evaluation
    "prepare_workload",
    "ExperimentWorkload",
    "run_experiment",
    "list_experiments",
]
