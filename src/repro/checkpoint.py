"""Checkpoint/restore for long-running simulations.

A checkpoint is one atomic pickle holding everything a fresh process
needs to continue a run and produce a report *byte-identical* to the
uninterrupted one:

* the frozen scenario (so the fleet, policy, governor, and shedder are
  rebuilt deterministically — they carry configuration, not identity);
* the request stream and arrival times as materialized *and mutated so
  far* (start/finish/shed columns change mid-run and cannot be
  regenerated);
* the engine :meth:`~repro.serve.engine.Engine.snapshot` — event heap,
  arena cursor, per-instance queues and in-flight batches, policy and
  hook ``state_dict`` s, and the exact ``np.random.Generator``
  bit-generator states captured after stream construction;
* the checkpoint cadence, so a resumed run keeps saving on schedule.

Checkpointed execution always steps the engine's general loop in
bounded :meth:`~repro.serve.engine.Engine.run_until` slices — which is
bit-for-bit the one-shot run — and both the uninterrupted and the
resumed path converge on the same ``finalize_*`` report builders.
Serve scenarios with ``stats="sketch"`` are the one caveat: plain
:func:`repro.serve.simulate` may take the chunk-interleaved streaming
mode whose RNG consumption differs by design, so the equality
reference for a sketch-mode resume is the uninterrupted *checkpointed*
run, not ``simulate``.

The payload is versioned (:data:`CHECKPOINT_SCHEMA` plus the ``repro``
release): loads from a different schema or release raise a clear
:class:`~repro.errors.ReproError` instead of surfacing a pickle
traceback or, worse, silently resuming with drifted semantics.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path

import numpy as np

from . import __version__
from .control.simulator import (
    ControlScenario,
    _DEFAULT_LOAD as _CONTROL_DEFAULT_LOAD,
    build_control_fleet,
    finalize_controlled,
    prepare_controlled,
)
from .errors import ConfigError, ReproError
from .power.dvfs import DVFSModel
from .serve.arrival import capture_rng_state, make_arrivals
from .serve.engine import build_requests
from .serve.simulator import (
    ServingScenario,
    finalize_serving,
    prepare_serving,
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "save_checkpoint",
    "load_checkpoint",
    "run_serve_checkpointed",
    "run_control_checkpointed",
    "resume_checkpointed",
]

#: Bump when the payload layout or the state-dict contracts change
#: incompatibly; loads from another schema are rejected outright.
CHECKPOINT_SCHEMA = 1

_INF = float("inf")


def save_checkpoint(path, payload: dict) -> None:
    """Atomically write ``payload`` to ``path``.

    Same idiom as the result cache: pickle into a temporary file in the
    target directory, then ``os.replace`` — a reader (or a resume after
    SIGKILL) sees either the previous complete checkpoint or the new
    one, never a torn file.
    """
    path = Path(path)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".ckpt"
        )
    except OSError as exc:
        raise ReproError(
            f"checkpoint path {path} is not writable: {exc}"
        ) from exc
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(
                payload, handle, protocol=pickle.HIGHEST_PROTOCOL
            )
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load_checkpoint(path) -> dict:
    """Read and validate a checkpoint payload.

    Raises:
        ReproError: If the file is missing, unreadable, not a repro
            checkpoint, or was written by a different checkpoint
            schema or package release.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except FileNotFoundError:
        raise ReproError(f"checkpoint {path} does not exist") from None
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError) as exc:
        raise ReproError(
            f"checkpoint {path} is not readable: {exc}"
        ) from exc
    if not isinstance(payload, dict) or "schema" not in payload:
        raise ReproError(
            f"{path} is not a repro checkpoint "
            "(no schema tag in payload)"
        )
    if payload["schema"] != CHECKPOINT_SCHEMA:
        raise ReproError(
            f"checkpoint {path} uses schema "
            f"{payload['schema']!r}, this build expects "
            f"{CHECKPOINT_SCHEMA!r}; re-run without --resume"
        )
    if payload.get("version") != __version__:
        raise ReproError(
            f"checkpoint {path} was written by repro "
            f"{payload.get('version')!r}, this is {__version__!r}; "
            "resuming across releases is not bit-stable, re-run "
            "without --resume"
        )
    return payload


# ----------------------------------------------------------------------
# Execution builders (fresh and resumed)
# ----------------------------------------------------------------------


def _begin_serve(scenario: ServingScenario, obs=None):
    """Build and arm a fresh checkpointable serve execution."""
    execution = prepare_serving(scenario, obs=obs)
    engine = execution.engine
    engine.begin(execution.requests)
    engine.state.rng_states = {"main": execution.rng_state}
    return execution, engine, finalize_serving


def _rebuild_serve(scenario: ServingScenario, times, requests, obs=None):
    """The serve execution around an already-materialized (and
    possibly mid-run-mutated) stream: everything
    :func:`~repro.serve.simulator.prepare_serving` builds except the
    stream itself, which must never be regenerated on resume."""
    from .serve.engine import Engine
    from .serve.fleet import Fleet
    from .serve.policies import make_policy
    from .serve.profile import build_mix
    from .serve.simulator import _DEFAULT_LOAD, ServingExecution

    mix = build_mix(
        scenario.mix, scenario.config, scenario.weight_bandwidth
    )
    capacity = scenario.instances / mix.mean_service_seconds()
    qps = scenario.qps if scenario.qps is not None else (
        _DEFAULT_LOAD * capacity
    )
    fleet = Fleet(scenario.instances)
    window_end = float(times[-1])
    for instance in fleet:
        instance.window_end = window_end
    policy = make_policy(scenario.policy)
    policy.reset()
    hooks = None
    tick_s = None
    if obs is not None and obs.active:
        # Mirror prepare_serving's wiring so the restored snapshot's
        # hook state lands on an identically shaped observer.
        hooks = obs.wrap(None, pid=0)
        obs.register_fleet(0, f"fleet ({scenario.mix})", fleet)
        tick_s = obs.engine_tick_s(None)
    engine = Engine(
        fleet,
        policy,
        max_batch=scenario.max_batch,
        max_wait_s=scenario.max_wait_ms * 1e-3,
        hooks=hooks,
        tick_s=tick_s,
    )
    return ServingExecution(
        scenario=scenario,
        mix=mix,
        capacity=capacity,
        qps=qps,
        times=times,
        requests=requests,
        fleet=fleet,
        engine=engine,
    )


def _control_inputs(scenario: ControlScenario):
    """The control plane's stream construction, mirroring
    ``simulate_controlled_detailed`` exactly (same RNG consumption)."""
    dvfs_model = DVFSModel()
    fleet, mix, capacity = build_control_fleet(scenario, dvfs_model)
    qps = scenario.qps if scenario.qps is not None else (
        _CONTROL_DEFAULT_LOAD * capacity
    )
    arrivals = make_arrivals(
        scenario.arrival,
        qps,
        burst_factor=scenario.burst_factor,
        trace=scenario.trace,
        diurnal_period_s=scenario.diurnal_period_s,
        diurnal_amplitude=scenario.diurnal_amplitude,
    )
    n = scenario.requests
    if scenario.arrival == "trace":
        n = min(n, len(scenario.trace))
    rng = np.random.default_rng(scenario.seed)
    times = arrivals.times(n, rng)
    requests = build_requests(
        mix, times, rng, slo_classes=scenario.slo_classes
    )
    return dvfs_model, fleet, mix, capacity, qps, times, requests, rng


def _begin_control(scenario: ControlScenario, obs=None):
    """Build and arm a fresh checkpointable control execution."""
    (
        dvfs_model, fleet, mix, capacity, qps, times, requests, rng,
    ) = _control_inputs(scenario)
    execution = prepare_controlled(
        scenario, fleet, mix, capacity, qps, times, requests,
        dvfs_model=dvfs_model, obs=obs,
    )
    execution.engine.state.rng_states = {
        "main": capture_rng_state(rng)
    }
    return execution, execution.engine, finalize_controlled


def _rebuild_control(scenario: ControlScenario, times, requests, obs=None):
    """The control execution around an already-materialized stream
    (fleet/governor/policy/shedder rebuilt deterministically; the
    engine snapshot overlays their mid-run state afterwards)."""
    dvfs_model = DVFSModel()
    fleet, mix, capacity = build_control_fleet(scenario, dvfs_model)
    qps = scenario.qps if scenario.qps is not None else (
        _CONTROL_DEFAULT_LOAD * capacity
    )
    return prepare_controlled(
        scenario, fleet, mix, capacity, qps, times, requests,
        dvfs_model=dvfs_model, obs=obs,
    )


# ----------------------------------------------------------------------
# Checkpointed drivers
# ----------------------------------------------------------------------


def _payload(kind, scenario, execution, every_s, next_t, obs=None) -> dict:
    payload = {
        "schema": CHECKPOINT_SCHEMA,
        "version": __version__,
        "kind": kind,
        "scenario": scenario,
        "every_s": every_s,
        "next_checkpoint_s": next_t,
        "snapshot": execution.engine.snapshot(),
        "requests": execution.requests,
        "times": execution.times,
    }
    # Telemetry configuration rides along (the recorded state itself
    # is inside the snapshot's hook state) so a resume can verify it
    # re-ran with matching flags.  Written only when active, keeping
    # pre-telemetry payload layouts byte-compatible.
    if obs is not None and obs.active:
        payload["obs"] = obs.spec()
    return payload


def _drive(
    kind, scenario, execution, engine, every_s, path, next_t, obs=None
):
    """Step the engine in checkpoint-cadence slices to drain.

    The slicing is bit-for-bit the one-shot ``run_until(inf)``; with
    no checkpoint path configured it degenerates to exactly that.
    """
    if every_s is None or path is None:
        engine.run_until(_INF)
        return
    while not engine.finished:
        engine.run_until(next_t)
        next_t += every_s
        if not engine.finished:
            save_checkpoint(
                path,
                _payload(
                    kind, scenario, execution, every_s, next_t, obs
                ),
            )


def _validate_cadence(every_s) -> None:
    if every_s is not None and every_s <= 0:
        raise ReproError(
            f"--checkpoint-every must be positive ({every_s})"
        )


def run_serve_checkpointed(
    scenario: ServingScenario,
    checkpoint_path=None,
    every_s: float | None = None,
    *,
    obs=None,
):
    """One serve-plane run with periodic checkpoints.

    Steps the general loop in ``every_s``-simulated-second slices,
    saving an atomic checkpoint after each; the report is identical to
    :func:`repro.serve.simulate` for ``stats="exact"`` scenarios (the
    general loop and the columnar fast paths agree bit-for-bit).
    """
    _validate_cadence(every_s)
    execution, engine, finalize = _begin_serve(scenario, obs)
    _drive(
        "serve", scenario, execution, engine, every_s,
        checkpoint_path, every_s if every_s is not None else _INF,
        obs,
    )
    return finalize(execution)


def run_control_checkpointed(
    scenario: ControlScenario,
    checkpoint_path=None,
    every_s: float | None = None,
    *,
    obs=None,
):
    """One control-plane run with periodic checkpoints (identical
    report to :func:`repro.control.simulate_controlled`)."""
    _validate_cadence(every_s)
    execution, engine, finalize = _begin_control(scenario, obs)
    _drive(
        "control", scenario, execution, engine, every_s,
        checkpoint_path, every_s if every_s is not None else _INF,
        obs,
    )
    return finalize(execution)


def resume_checkpointed(path, checkpoint_path=None, *, obs=None):
    """Continue a checkpointed run in a fresh process.

    Rebuilds the scenario's fleet/policy/hooks deterministically,
    overlays the snapshot (queues rebound by stream position, RNG
    states reattached, governor/forecaster state restored), and drains
    on the same cadence — producing a report byte-identical to the
    uninterrupted run.  Keeps checkpointing to ``checkpoint_path``
    (default: ``path`` itself).

    If the checkpoint was taken with telemetry active, ``obs`` must be
    an :class:`~repro.obs.Observability` configured with the same
    flags (and vice versa) — the recorded spans live inside the hook
    state and need an identically shaped observer to land on, so a
    mismatch raises :class:`~repro.errors.ReproError` up front rather
    than producing a silently truncated trace.

    Returns:
        ``(kind, scenario, report)`` with ``kind`` one of ``"serve"``
        / ``"control"``.
    """
    from .obs import Observability

    payload = load_checkpoint(path)
    Observability.check_resume(
        payload.get("obs"),
        obs if obs is not None and obs.active else None,
    )
    kind = payload["kind"]
    scenario = payload["scenario"]
    times = payload["times"]
    requests = payload["requests"]
    if kind == "serve":
        execution = _rebuild_serve(scenario, times, requests, obs)
        execution.engine.begin(requests)
        finalize = finalize_serving
    elif kind == "control":
        execution = _rebuild_control(scenario, times, requests, obs)
        finalize = finalize_controlled
    else:
        raise ReproError(
            f"checkpoint {path} has unknown kind {kind!r}"
        )
    try:
        execution.engine.restore(payload["snapshot"], requests)
    except (KeyError, TypeError, ConfigError) as exc:
        raise ReproError(
            f"checkpoint {path} does not match this build's state "
            f"layout: {exc}"
        ) from exc
    _drive(
        kind, scenario, execution, execution.engine,
        payload["every_s"],
        checkpoint_path if checkpoint_path is not None else path,
        payload["next_checkpoint_s"],
        obs,
    )
    return kind, scenario, finalize(execution)
