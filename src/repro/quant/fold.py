"""Folding dequantization + BatchNorm + ReLU + requantization into k*x + b.

This is the mathematical heart of EDEA's Non-Conv unit (paper Section III-C
and Fig. 6).  Between the DWC and PWC engines the network applies, in float:

    y = quant( relu( BN( dequant(acc) ) ) )

with ``dequant(acc) = s_in * s_w * acc`` (symmetric int8 scales) and
``BN(v) = gamma * (v - mu) / sqrt(var + eps) + beta``.  Because every
parameter is fixed at inference time, the whole chain collapses to

    y = clip( round( k * acc + b ) ),   with per-channel constants
    k = s_in * s_w * gamma / sqrt(var + eps) / s_out
    b = (beta - gamma * mu / sqrt(var + eps)) / s_out

and ReLU realized by clamping the result at zero.  The hardware stores
``k`` and ``b`` as Q8.16 fixed-point (24-bit) values; this module derives
those constants and applies them with bit-accurate integer arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import QuantizationError
from ..fixedpoint import Q8_16, QFormat, fixed_mul_add, requantize_to_int8
from .scheme import QuantParams

__all__ = ["BNParams", "NonConvParams", "derive_nonconv_params"]


@dataclass(frozen=True)
class BNParams:
    """Inference-time batch-norm parameters for one channel group."""

    gamma: np.ndarray
    beta: np.ndarray
    mean: np.ndarray
    var: np.ndarray
    eps: float = 1e-5

    def __post_init__(self) -> None:
        shapes = {
            np.shape(self.gamma),
            np.shape(self.beta),
            np.shape(self.mean),
            np.shape(self.var),
        }
        if len(shapes) != 1:
            raise QuantizationError(
                f"BN parameter shapes disagree: {sorted(shapes)}"
            )
        if np.any(np.asarray(self.var) < 0):
            raise QuantizationError("BN variance must be non-negative")

    @property
    def channels(self) -> int:
        """Number of channels covered."""
        return int(np.shape(self.gamma)[0])

    def inv_std(self) -> np.ndarray:
        """``1 / sqrt(var + eps)`` per channel."""
        return 1.0 / np.sqrt(np.asarray(self.var) + self.eps)


@dataclass(frozen=True)
class NonConvParams:
    """Per-channel folded constants of one Non-Conv stage.

    Attributes:
        k_raw: Per-channel multiplier as raw Q8.16 integers.
        b_raw: Per-channel offset as raw Q8.16 integers.
        relu: Apply ReLU (clamp at the code of real zero) before
            requantization.
        fmt: The fixed-point format of ``k_raw``/``b_raw`` (Q8.16 in EDEA).
        relu_floor: Integer code that represents real zero in the output
            domain — 0 for the symmetric scheme, the output zero-point
            for affine outputs (the ReLU clamp lands there).
    """

    k_raw: np.ndarray
    b_raw: np.ndarray
    relu: bool = True
    fmt: QFormat = field(default=Q8_16)
    relu_floor: int = 0

    def __post_init__(self) -> None:
        if np.shape(self.k_raw) != np.shape(self.b_raw):
            raise QuantizationError(
                f"k/b shape mismatch: {np.shape(self.k_raw)} vs "
                f"{np.shape(self.b_raw)}"
            )

    @property
    def channels(self) -> int:
        """Number of channels covered."""
        return int(np.shape(self.k_raw)[0])

    def k_float(self) -> np.ndarray:
        """Real-valued multipliers (after Q8.16 rounding)."""
        return self.fmt.to_float(self.k_raw)

    def b_float(self) -> np.ndarray:
        """Real-valued offsets (after Q8.16 rounding)."""
        return self.fmt.to_float(self.b_raw)

    def apply(self, acc: np.ndarray, channel_axis: int = 0) -> np.ndarray:
        """Run the Non-Conv datapath on integer accumulators.

        Args:
            acc: Integer convolution accumulators; the size along
                ``channel_axis`` must equal :attr:`channels`.
            channel_axis: Axis indexing the output channel.

        Returns:
            int8 activations with identical shape.
        """
        acc = np.asarray(acc)
        if acc.shape[channel_axis] != self.channels:
            raise QuantizationError(
                f"accumulator has {acc.shape[channel_axis]} channels on axis "
                f"{channel_axis}, Non-Conv params cover {self.channels}"
            )
        shape = [1] * acc.ndim
        shape[channel_axis] = self.channels
        k = np.asarray(self.k_raw, dtype=np.int64).reshape(shape)
        b = np.asarray(self.b_raw, dtype=np.int64).reshape(shape)
        # One multiply and one add per element — the unit's whole datapath —
        # followed by the rounding/ReLU/saturation output stage.
        wide = acc.astype(np.int64) * k + b
        return requantize_to_int8(
            wide,
            self.fmt.fraction_bits,
            apply_relu=self.relu,
            relu_floor=self.relu_floor,
        )

    def apply_scalar(self, acc: int, channel: int) -> int:
        """Scalar version of :meth:`apply` (used by the PE-level model)."""
        wide = fixed_mul_add(
            np.asarray([acc]),
            int(np.asarray(self.k_raw)[channel]),
            int(np.asarray(self.b_raw)[channel]),
            self.fmt,
        )
        out = requantize_to_int8(
            wide,
            self.fmt.fraction_bits,
            apply_relu=self.relu,
            relu_floor=self.relu_floor,
        )
        return int(out[0])

    def float_reference(self, acc: np.ndarray, channel_axis: int = 0):
        """Float-domain reference of the same computation.

        Uses the Q8.16-rounded constants so it differs from :meth:`apply`
        only by the output rounding model; used in property tests.
        """
        shape = [1] * acc.ndim
        shape[channel_axis] = self.channels
        k = self.k_float().reshape(shape)
        b = self.b_float().reshape(shape)
        val = acc.astype(np.float64) * k + b
        if self.relu:
            val = np.maximum(val, float(self.relu_floor))
        return np.clip(np.round(val), -128, 127)


def derive_nonconv_params(
    input_params: QuantParams,
    weight_params: QuantParams,
    bn: BNParams,
    output_params: QuantParams,
    relu: bool = True,
    fmt: QFormat = Q8_16,
    saturate: bool = False,
) -> NonConvParams:
    """Fold the dequant→BN→ReLU→quant chain into Q8.16 ``(k, b)`` pairs.

    Args:
        input_params: Quantization of the convolution's int8 input.
        weight_params: Quantization of the convolution's int8 weights.
        bn: Batch-norm parameters following the convolution.
        output_params: Quantization of the stage's int8 output.
        relu: Whether a ReLU sits between BN and requantization.
        fmt: Fixed-point storage format for the folded constants.
        saturate: Clamp out-of-range constants to the format limits
            instead of raising.  The paper chose Q8.16 to cover all ranges
            of its trained network; barely-trained networks (whose BN
            running statistics are still settling) can exceed it on a few
            channels, where clamping is the hardware-faithful behaviour.

    Returns:
        :class:`NonConvParams` covering ``bn.channels`` channels.

    Raises:
        QuantizationError: If a folded constant saturates the fixed-point
            format and ``saturate`` is False.
    """
    # Only *output* zero-points fold into the mul-add (they shift b).
    # An affine conv input would leave an uncorrected z_in * sum(w_q)
    # term in every accumulator (and zero-padding would inject code 0
    # where real zero is code z_in), so the integer path rejects it
    # rather than produce silently wrong codes.
    if input_params.zero_point != 0:
        raise QuantizationError(
            "affine (nonzero zero-point) convolution inputs are not "
            "supported by the folded integer path; only output "
            "zero-points fold into the Non-Conv constants"
        )
    if weight_params.zero_point != 0:
        raise QuantizationError(
            "weights must be symmetrically quantized (zero_point == 0)"
        )
    inv_std = bn.inv_std()
    k = (
        input_params.scale
        * weight_params.scale
        * np.asarray(bn.gamma)
        * inv_std
        / output_params.scale
    )
    # The output zero-point folds into the additive constant: the stage
    # produces codes q = round(real / s_out) + z_out in one mul-add.
    b = (
        np.asarray(bn.beta)
        - np.asarray(bn.gamma) * np.asarray(bn.mean) * inv_std
    ) / output_params.scale + output_params.zero_point
    if not saturate:
        for name, values in (("k", k), ("b", b)):
            if np.any(values < fmt.min_value) or np.any(
                values > fmt.max_value
            ):
                raise QuantizationError(
                    f"folded constant {name} exceeds {fmt} range: "
                    f"[{values.min():.4f}, {values.max():.4f}]"
                )
    return NonConvParams(
        k_raw=np.asarray(fmt.to_fixed(k), dtype=np.int64),
        b_raw=np.asarray(fmt.to_fixed(b), dtype=np.int64),
        relu=relu,
        fmt=fmt,
        relu_floor=output_params.zero_point,
    )
