"""Bit-accurate int8 reference model of quantized MobileNetV1.

This is the golden reference the accelerator simulator is checked against:
every DSC layer is executed with integer arithmetic only — int8 operands,
wide accumulators, and the Q8.16 Non-Conv stage — exactly as the hardware
does, but without any tiling or scheduling.  The stem convolution and the
classifier head stay in float, mirroring the paper's system boundary (the
EDEA accelerator covers the 13 DSC layers; other layers run elsewhere).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import QuantizationError, ShapeError
from ..nn import functional as F
from ..nn.layers import (
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    GlobalAvgPool,
    Linear,
    PointwiseConv2d,
    ReLU,
)
from ..nn.mobilenet import DSCLayerSpec
from ..nn.model import Sequential
from .fold import BNParams, NonConvParams, derive_nonconv_params
from .observer import MinMaxObserver, PercentileObserver
from .scheme import QuantParams, dequantize, quantize

__all__ = ["QuantizedDSCLayer", "QuantizedMobileNet", "quantize_mobilenet"]


@dataclass
class QuantizedDSCLayer:
    """One int8 depthwise-separable layer with folded Non-Conv stages.

    Attributes:
        spec: Layer geometry.
        dwc_weight: int8 depthwise kernels, shape ``(D, 3, 3)``.
        pwc_weight: int8 pointwise kernels, shape ``(K, D)``.
        dwc_nonconv: Folded constants between DWC and PWC (D channels).
        pwc_nonconv: Folded constants after PWC (K channels).
        input_params: Quantization of the layer's int8 input.
        mid_params: Quantization of the intermediate (PWC input) tensor.
        output_params: Quantization of the layer's int8 output.
    """

    spec: DSCLayerSpec
    dwc_weight: np.ndarray
    pwc_weight: np.ndarray
    dwc_nonconv: NonConvParams
    pwc_nonconv: NonConvParams
    input_params: QuantParams
    mid_params: QuantParams
    output_params: QuantParams

    def __post_init__(self) -> None:
        d, k = self.spec.in_channels, self.spec.out_channels
        if self.dwc_weight.shape != (d, 3, 3):
            raise ShapeError(
                f"dwc_weight shape {self.dwc_weight.shape} != {(d, 3, 3)}"
            )
        if self.pwc_weight.shape != (k, d):
            raise ShapeError(
                f"pwc_weight shape {self.pwc_weight.shape} != {(k, d)}"
            )

    def dwc_accumulate(self, x_q: np.ndarray) -> np.ndarray:
        """Integer depthwise convolution: int8 in, int64 accumulators out."""
        acc = F.depthwise_conv2d(
            x_q.astype(np.int64),
            self.dwc_weight.astype(np.int64),
            None,
            stride=self.spec.stride,
            padding=1,
        )
        return acc

    def pwc_accumulate(self, mid_q: np.ndarray) -> np.ndarray:
        """Integer pointwise convolution: int8 in, int64 accumulators out."""
        return F.pointwise_conv2d(
            mid_q.astype(np.int64), self.pwc_weight.astype(np.int64), None
        )

    def forward(self, x_q: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Run the layer on an int8 batch ``(N, D, H, W)``.

        Returns:
            ``(mid_q, out_q)``: the int8 intermediate (PWC input) and the
            int8 layer output — both are needed by the sparsity analysis.
        """
        if x_q.dtype != np.int8:
            raise QuantizationError(
                f"layer input must be int8 (got {x_q.dtype})"
            )
        mid_q = self.dwc_nonconv.apply(self.dwc_accumulate(x_q), channel_axis=1)
        out_q = self.pwc_nonconv.apply(self.pwc_accumulate(mid_q), channel_axis=1)
        return mid_q, out_q


class QuantizedMobileNet:
    """Float stem + 13 int8 DSC layers + float classifier head."""

    def __init__(
        self,
        stem: list,
        input_params: QuantParams,
        layers: list[QuantizedDSCLayer],
        head_pool: GlobalAvgPool,
        head_linear: Linear,
    ) -> None:
        self.stem = stem
        self.input_params = input_params
        self.layers = layers
        self.head_pool = head_pool
        self.head_linear = head_linear

    def stem_forward(self, images: np.ndarray) -> np.ndarray:
        """Float stem, then quantization to the int8 domain of layer 0."""
        x = images
        for layer in self.stem:
            x = layer.forward(x)
        return quantize(x, self.input_params)

    def forward(
        self, images: np.ndarray, return_activations: bool = False
    ):
        """Classify a float image batch through the quantized network.

        Args:
            images: ``(N, 3, H, W)`` float input batch.
            return_activations: When True, also return the per-layer int8
                intermediate and output tensors (for sparsity analysis).

        Returns:
            Logits ``(N, classes)``, optionally with an activation list of
            ``(mid_q, out_q)`` tuples per DSC layer.
        """
        x_q = self.stem_forward(images)
        activations = []
        for layer in self.layers:
            mid_q, x_q = layer.forward(x_q)
            if return_activations:
                activations.append((mid_q, x_q))
        x = dequantize(x_q, self.layers[-1].output_params)
        pooled = self.head_pool.forward(x)
        logits = self.head_linear.forward(pooled)
        if return_activations:
            return logits, activations
        return logits

    def layer_input(self, images: np.ndarray, layer_index: int) -> np.ndarray:
        """int8 input tensor of DSC layer ``layer_index`` for ``images``."""
        if not 0 <= layer_index < len(self.layers):
            raise ShapeError(f"no DSC layer {layer_index}")
        x_q = self.stem_forward(images)
        for layer in self.layers[:layer_index]:
            _, x_q = layer.forward(x_q)
        return x_q

    def zero_fractions(self, images: np.ndarray) -> list[dict]:
        """Per-layer sparsity of the DWC and PWC int8 activations.

        Returns a list of dicts with keys ``dwc_input``, ``pwc_input`` and
        ``pwc_output`` giving the fraction of zero-valued int8 elements —
        the quantity Fig. 11 of the paper plots against layer power.
        """
        x_q = self.stem_forward(images)
        stats = []
        for layer in self.layers:
            mid_q, out_q = layer.forward(x_q)
            stats.append(
                {
                    "dwc_input": float(np.mean(x_q == 0)),
                    "pwc_input": float(np.mean(mid_q == 0)),
                    "pwc_output": float(np.mean(out_q == 0)),
                }
            )
            x_q = out_q
        return stats


def _expect(layer, cls):
    if not isinstance(layer, cls):
        raise ShapeError(
            f"model structure mismatch: expected {cls.__name__}, got "
            f"{type(layer).__name__}"
        )
    return layer


def _make_observer(strategy: str, signed: bool):
    if strategy == "minmax":
        return MinMaxObserver(signed=signed)
    if strategy == "percentile":
        return PercentileObserver(signed=signed)
    raise QuantizationError(f"unknown calibration strategy {strategy!r}")


def quantize_mobilenet(
    model: Sequential,
    specs: list[DSCLayerSpec],
    calibration_images: np.ndarray,
    strategy: str = "minmax",
) -> QuantizedMobileNet:
    """Post-training-quantize a float MobileNetV1 into the int8 reference.

    The float model must follow the structure produced by
    :func:`repro.nn.build_mobilenet_v1`.  Activation scales come from
    running the calibration batch through the float model in eval mode;
    weight scales are per-tensor absolute-max; BN parameters are folded
    into per-channel Q8.16 Non-Conv constants.

    Args:
        model: Trained float model (will be switched to eval mode).
        specs: The DSC layer geometry the model was built from.
        calibration_images: Float batch used to calibrate activations.
        strategy: ``"minmax"`` or ``"percentile"``.

    Returns:
        A :class:`QuantizedMobileNet`.
    """
    expected_len = 3 + 6 * len(specs) + 2
    if len(model) != expected_len:
        raise ShapeError(
            f"model has {len(model)} layers, expected {expected_len} for "
            f"{len(specs)} DSC blocks"
        )
    model.eval()

    stem = [
        _expect(model[0], Conv2d),
        _expect(model[1], BatchNorm2d),
        _expect(model[2], ReLU),
    ]

    # --- calibration pass: capture float activations at quantization points
    x = calibration_images
    for layer in stem:
        x = layer.forward(x)
    act_observers = []
    obs = _make_observer(strategy, signed=False)
    obs.observe(x)
    act_observers.append(obs)  # input of DSC layer 0 (post stem ReLU)
    for i in range(len(specs)):
        base = 3 + 6 * i
        dw = _expect(model[base + 0], DepthwiseConv2d)
        bn1 = _expect(model[base + 1], BatchNorm2d)
        relu1 = _expect(model[base + 2], ReLU)
        pw = _expect(model[base + 3], PointwiseConv2d)
        bn2 = _expect(model[base + 4], BatchNorm2d)
        relu2 = _expect(model[base + 5], ReLU)
        x = relu1.forward(bn1.forward(dw.forward(x)))
        obs_mid = _make_observer(strategy, signed=False)
        obs_mid.observe(x)
        x = relu2.forward(bn2.forward(pw.forward(x)))
        obs_out = _make_observer(strategy, signed=False)
        obs_out.observe(x)
        act_observers.append(obs_mid)
        act_observers.append(obs_out)

    input_params = act_observers[0].compute_params()

    # --- fold every block
    qlayers = []
    prev_params = input_params
    for i, spec in enumerate(specs):
        base = 3 + 6 * i
        dw = model[base + 0]
        bn1 = model[base + 1]
        pw = model[base + 3]
        bn2 = model[base + 4]
        mid_params = act_observers[1 + 2 * i].compute_params()
        out_params = act_observers[2 + 2 * i].compute_params()

        w_obs = MinMaxObserver(signed=True)
        w_obs.observe(dw.weight.data)
        dwc_w_params = w_obs.compute_params()
        w_obs = MinMaxObserver(signed=True)
        w_obs.observe(pw.weight.data)
        pwc_w_params = w_obs.compute_params()

        dwc_nonconv = derive_nonconv_params(
            prev_params,
            dwc_w_params,
            BNParams(
                gamma=bn1.gamma.data,
                beta=bn1.beta.data,
                mean=bn1.running_mean,
                var=bn1.running_var,
                eps=bn1.eps,
            ),
            mid_params,
            relu=True,
            saturate=True,
        )
        pwc_nonconv = derive_nonconv_params(
            mid_params,
            pwc_w_params,
            BNParams(
                gamma=bn2.gamma.data,
                beta=bn2.beta.data,
                mean=bn2.running_mean,
                var=bn2.running_var,
                eps=bn2.eps,
            ),
            out_params,
            relu=True,
            saturate=True,
        )
        qlayers.append(
            QuantizedDSCLayer(
                spec=spec,
                dwc_weight=quantize(dw.weight.data, dwc_w_params),
                pwc_weight=quantize(pw.weight.data, pwc_w_params),
                dwc_nonconv=dwc_nonconv,
                pwc_nonconv=pwc_nonconv,
                input_params=prev_params,
                mid_params=mid_params,
                output_params=out_params,
            )
        )
        prev_params = out_params

    head_pool = _expect(model[3 + 6 * len(specs)], GlobalAvgPool)
    head_linear = _expect(model[4 + 6 * len(specs)], Linear)
    return QuantizedMobileNet(
        stem=stem,
        input_params=input_params,
        layers=qlayers,
        head_pool=head_pool,
        head_linear=head_linear,
    )
