"""Learned Step-size Quantization (LSQ), Esser et al. 2019.

The paper quantizes MobileNetV1 weights and activations to 8 bit "using the
LSQ technique" before mapping the network onto the accelerator.  LSQ treats
the quantizer step size ``s`` as a trainable parameter: the fake-quantized
value is ``q = clip(round(x/s), Qn, Qp) * s`` and the gradient w.r.t. ``s``
uses the straight-through estimator

    d q / d s =  -x/s + round(x/s)    if Qn < x/s < Qp
                 Qn or Qp             otherwise,

scaled by ``g = 1 / sqrt(N * Qp)`` for stable training.  This module
implements LSQ as a :class:`~repro.nn.layers.Layer` that can be inserted
into a model for quantization-aware training; after QAT the learned step
becomes the deployment scale.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import QuantizationError
from ..nn.layers import Layer, Parameter
from .scheme import QuantParams

__all__ = ["LSQQuantizer", "lsq_initial_step"]


def lsq_initial_step(
    x: np.ndarray, qmax: int
) -> float:
    """LSQ paper initialization: ``2 * mean(|x|) / sqrt(Qp)``."""
    if x.size == 0:
        raise QuantizationError("cannot initialize LSQ from an empty array")
    step = 2.0 * float(np.mean(np.abs(x))) / np.sqrt(qmax)
    return step if step > 0 else 1.0 / qmax


class LSQQuantizer(Layer):
    """Fake-quantization layer with a learned step size.

    In training mode the forward pass fake-quantizes (quantize, then
    dequantize) and the backward pass propagates straight-through input
    gradients plus the LSQ step-size gradient.  In eval mode it behaves
    identically on the forward path, so QAT and deployment see the same
    numerics.

    Args:
        signed: False for post-ReLU activations (range [0, 127]).
        step: Initial step size; when None it is set from the first batch.
    """

    def __init__(self, signed: bool = True, step: float | None = None) -> None:
        super().__init__()
        self.signed = signed
        self.qmin = -128 if signed else 0
        self.qmax = 127
        initial = float(step) if step is not None else float("nan")
        self.step = Parameter(np.array([initial]), name="lsq.step")
        self._cache: tuple | None = None

    @property
    def initialized(self) -> bool:
        """Whether the step size has been set (directly or from data)."""
        return bool(np.isfinite(self.step.data[0]))

    def quant_params(self) -> QuantParams:
        """Deployment quantization parameters from the learned step."""
        if not self.initialized:
            raise QuantizationError("LSQ step was never initialized")
        return QuantParams(scale=float(self.step.data[0]), signed=self.signed)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.initialized:
            self.step.data[0] = lsq_initial_step(x, self.qmax)
        s = float(self.step.data[0])
        if s <= 0:
            # Training can push s toward zero; clamp to keep the quantizer
            # sane, as reference LSQ implementations do.
            s = 1e-8
            self.step.data[0] = s
        ratio = x / s
        clipped = np.clip(ratio, self.qmin, self.qmax)
        rounded = np.round(clipped)
        out = rounded * s
        if self.training:
            self._cache = (ratio, rounded, x.size)
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise QuantizationError("backward called before forward")
        ratio, rounded, n = self._cache
        inside = (ratio > self.qmin) & (ratio < self.qmax)
        # d(out)/d(s): rounded - ratio inside the range; the clip bound
        # outside it (rounded equals the bound there).
        ds_elem = np.where(inside, rounded - ratio, rounded)
        grad_scale = 1.0 / np.sqrt(n * self.qmax)
        self.step.grad[0] += float(np.sum(dout * ds_elem)) * grad_scale
        return dout * inside

    def parameters(self) -> Iterator[Parameter]:
        yield self.step
