"""Quantization-aware training (QAT) with LSQ, and conversion to int8.

The paper quantizes MobileNetV1 "to 8 bits using the LSQ technique",
i.e. quantization-aware training with learned step sizes, then deploys
the learned scales.  This module provides that flow on our NumPy
substrate:

1. :func:`prepare_qat_mobilenet` rebuilds a float MobileNetV1 with LSQ
   fake-quantizers on every DSC weight tensor and every activation edge
   the hardware quantizes;
2. ordinary training (``repro.nn.Trainer``) then learns weights *and*
   step sizes jointly (straight-through gradients);
3. :func:`convert_qat_mobilenet` folds the learned steps and BN
   statistics into a deployable bit-exact
   :class:`~repro.quant.qmodel.QuantizedMobileNet`.

The post-training path (:func:`~repro.quant.qmodel.quantize_mobilenet`)
remains available; the QAT path typically recovers accuracy lost to
quantization because the scales co-adapt with the weights (asserted in
the test suite on a separable toy task).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import ShapeError
from ..nn import functional as F
from ..nn.layers import (
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    GlobalAvgPool,
    Layer,
    Linear,
    Parameter,
    PointwiseConv2d,
    ReLU,
)
from ..nn.mobilenet import DSCLayerSpec
from ..nn.model import Sequential
from .fold import BNParams, derive_nonconv_params
from .lsq import LSQQuantizer
from .qmodel import QuantizedDSCLayer, QuantizedMobileNet
from .scheme import quantize

__all__ = [
    "QATDepthwiseConv2d",
    "QATPointwiseConv2d",
    "prepare_qat_mobilenet",
    "convert_qat_mobilenet",
]


class QATDepthwiseConv2d(Layer):
    """Depthwise convolution with LSQ fake-quantized weights."""

    def __init__(self, conv: DepthwiseConv2d) -> None:
        super().__init__()
        self.conv = conv
        self.weight_quant = LSQQuantizer(signed=True)
        self._x: np.ndarray | None = None
        self._w_fq: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        self._w_fq = self.weight_quant.forward(self.conv.weight.data)
        return F.depthwise_conv2d(
            x, self._w_fq, None, self.conv.stride, self.conv.padding
        )

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._x is None or self._w_fq is None:
            raise ShapeError("backward called before forward")
        dx, dw_fq, _ = F.depthwise_conv2d_backward(
            dout,
            self._x,
            self._w_fq,
            self.conv.stride,
            self.conv.padding,
            has_bias=False,
        )
        self.conv.weight.grad += self.weight_quant.backward(dw_fq)
        return dx

    def parameters(self) -> Iterator[Parameter]:
        yield self.conv.weight
        yield from self.weight_quant.parameters()


class QATPointwiseConv2d(Layer):
    """Pointwise convolution with LSQ fake-quantized weights."""

    def __init__(self, conv: PointwiseConv2d) -> None:
        super().__init__()
        self.conv = conv
        self.weight_quant = LSQQuantizer(signed=True)
        self._x: np.ndarray | None = None
        self._w_fq: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        self._w_fq = self.weight_quant.forward(self.conv.weight.data)
        return F.pointwise_conv2d(x, self._w_fq, None)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._x is None or self._w_fq is None:
            raise ShapeError("backward called before forward")
        dx, dw_fq, _ = F.pointwise_conv2d_backward(
            dout, self._x, self._w_fq, has_bias=False
        )
        self.conv.weight.grad += self.weight_quant.backward(dw_fq)
        return dx

    def parameters(self) -> Iterator[Parameter]:
        yield self.conv.weight
        yield from self.weight_quant.parameters()


def prepare_qat_mobilenet(model: Sequential, num_blocks: int) -> Sequential:
    """Rebuild a float MobileNetV1 for quantization-aware training.

    The returned model shares parameters with ``model`` (training the QAT
    model trains the original tensors) and inserts:

    * an unsigned LSQ activation quantizer after the stem ReLU and after
      every ReLU inside the DSC blocks (the tensors the hardware stores
      as int8), and
    * a signed LSQ weight quantizer inside every DSC convolution.

    Layout: ``[Conv, BN, ReLU, ActQ] + num_blocks x [QATDW, BN, ReLU,
    ActQ, QATPW, BN, ReLU, ActQ] + [GAP, Linear]``.

    Args:
        model: A model from :func:`repro.nn.build_mobilenet_v1`.
        num_blocks: Number of DSC blocks (13 for MobileNetV1).
    """
    expected = 3 + 6 * num_blocks + 2
    if len(model) != expected:
        raise ShapeError(
            f"model has {len(model)} layers, expected {expected} for "
            f"{num_blocks} DSC blocks"
        )
    qat = Sequential()
    # stem
    qat.add(model[0]).add(model[1]).add(model[2])
    qat.add(LSQQuantizer(signed=False))
    for i in range(num_blocks):
        base = 3 + 6 * i
        dw = model[base + 0]
        if not isinstance(dw, DepthwiseConv2d):
            raise ShapeError(
                f"expected DepthwiseConv2d at index {base}, got "
                f"{type(dw).__name__}"
            )
        pw = model[base + 3]
        if not isinstance(pw, PointwiseConv2d):
            raise ShapeError(
                f"expected PointwiseConv2d at index {base + 3}, got "
                f"{type(pw).__name__}"
            )
        qat.add(QATDepthwiseConv2d(dw))
        qat.add(model[base + 1])
        qat.add(model[base + 2])
        qat.add(LSQQuantizer(signed=False))
        qat.add(QATPointwiseConv2d(pw))
        qat.add(model[base + 4])
        qat.add(model[base + 5])
        qat.add(LSQQuantizer(signed=False))
    qat.add(model[3 + 6 * num_blocks])
    qat.add(model[4 + 6 * num_blocks])
    return qat


def convert_qat_mobilenet(
    qat_model: Sequential, specs: list[DSCLayerSpec]
) -> QuantizedMobileNet:
    """Fold a trained QAT model into a deployable int8 network.

    All scales come from the learned LSQ step sizes; BN statistics come
    from the (shared) BatchNorm layers; the Non-Conv constants are
    derived exactly as in the PTQ path.
    """
    expected = 4 + 8 * len(specs) + 2
    if len(qat_model) != expected:
        raise ShapeError(
            f"QAT model has {len(qat_model)} layers, expected {expected}"
        )
    qat_model.eval()

    stem = [qat_model[0], qat_model[1], qat_model[2]]
    for layer, cls in zip(stem, (Conv2d, BatchNorm2d, ReLU)):
        if not isinstance(layer, cls):
            raise ShapeError(
                f"stem structure mismatch: got {type(layer).__name__}"
            )
    stem_actq = qat_model[3]
    if not isinstance(stem_actq, LSQQuantizer):
        raise ShapeError("expected stem activation quantizer at index 3")
    input_params = stem_actq.quant_params()

    qlayers = []
    prev_params = input_params
    for i, spec in enumerate(specs):
        base = 4 + 8 * i
        qat_dw = qat_model[base + 0]
        bn1 = qat_model[base + 1]
        mid_actq = qat_model[base + 3]
        qat_pw = qat_model[base + 4]
        bn2 = qat_model[base + 5]
        out_actq = qat_model[base + 7]
        if not isinstance(qat_dw, QATDepthwiseConv2d) or not isinstance(
            qat_pw, QATPointwiseConv2d
        ):
            raise ShapeError(f"block {i} structure mismatch")

        dwc_w_params = qat_dw.weight_quant.quant_params()
        pwc_w_params = qat_pw.weight_quant.quant_params()
        mid_params = mid_actq.quant_params()
        out_params = out_actq.quant_params()

        dwc_nonconv = derive_nonconv_params(
            prev_params,
            dwc_w_params,
            BNParams(
                gamma=bn1.gamma.data,
                beta=bn1.beta.data,
                mean=bn1.running_mean,
                var=bn1.running_var,
                eps=bn1.eps,
            ),
            mid_params,
            relu=True,
            saturate=True,
        )
        pwc_nonconv = derive_nonconv_params(
            mid_params,
            pwc_w_params,
            BNParams(
                gamma=bn2.gamma.data,
                beta=bn2.beta.data,
                mean=bn2.running_mean,
                var=bn2.running_var,
                eps=bn2.eps,
            ),
            out_params,
            relu=True,
            saturate=True,
        )
        qlayers.append(
            QuantizedDSCLayer(
                spec=spec,
                dwc_weight=quantize(qat_dw.conv.weight.data, dwc_w_params),
                pwc_weight=quantize(qat_pw.conv.weight.data, pwc_w_params),
                dwc_nonconv=dwc_nonconv,
                pwc_nonconv=pwc_nonconv,
                input_params=prev_params,
                mid_params=mid_params,
                output_params=out_params,
            )
        )
        prev_params = out_params

    head_pool = qat_model[4 + 8 * len(specs)]
    head_linear = qat_model[5 + 8 * len(specs)]
    if not isinstance(head_pool, GlobalAvgPool) or not isinstance(
        head_linear, Linear
    ):
        raise ShapeError("head structure mismatch")
    return QuantizedMobileNet(
        stem=stem,
        input_params=input_params,
        layers=qlayers,
        head_pool=head_pool,
        head_linear=head_linear,
    )
