"""Serialization of quantized models to a single ``.npz`` archive.

A deployable EDEA network is exactly what the hardware consumes: int8
weight tensors, per-channel Q8.16 Non-Conv constants, and per-tensor
scales — plus the float stem/head parameters of the host-side layers.
This module packs a :class:`~repro.quant.qmodel.QuantizedMobileNet` into
one NumPy archive and restores it bit-identically, so trained/quantized
models can be shipped without re-running training.
"""

from __future__ import annotations

import numpy as np

from ..errors import QuantizationError, ShapeError
from ..nn.layers import BatchNorm2d, Conv2d, GlobalAvgPool, Linear, ReLU
from ..nn.mobilenet import DSCLayerSpec
from .fold import NonConvParams
from .qmodel import QuantizedDSCLayer, QuantizedMobileNet
from .scheme import QuantParams

__all__ = ["save_quantized_model", "load_quantized_model"]

FORMAT_VERSION = 1


def save_quantized_model(model: QuantizedMobileNet, path: str) -> None:
    """Write a quantized model to ``path`` (.npz).

    The archive is self-describing: layer geometry, all int8 tensors,
    raw Q8.16 constants, scales, and the float stem/head parameters.
    """
    stem_conv, stem_bn, stem_relu = model.stem
    if not isinstance(stem_conv, Conv2d) or not isinstance(
        stem_bn, BatchNorm2d
    ):
        raise ShapeError("model stem has unexpected structure")
    if not isinstance(stem_relu, ReLU):
        raise ShapeError("model stem has unexpected structure")

    arrays: dict[str, np.ndarray] = {
        "format_version": np.array(FORMAT_VERSION),
        "num_layers": np.array(len(model.layers)),
        "input_scale": np.array(model.input_params.scale),
        "input_signed": np.array(model.input_params.signed),
        "stem_conv_weight": stem_conv.weight.data,
        "stem_conv_stride": np.array(stem_conv.stride),
        "stem_conv_padding": np.array(stem_conv.padding),
        "stem_bn_gamma": stem_bn.gamma.data,
        "stem_bn_beta": stem_bn.beta.data,
        "stem_bn_mean": stem_bn.running_mean,
        "stem_bn_var": stem_bn.running_var,
        "stem_bn_eps": np.array(stem_bn.eps),
        "head_weight": model.head_linear.weight.data,
        "head_bias": model.head_linear.bias.data,
    }
    for i, layer in enumerate(model.layers):
        p = f"layer{i}_"
        spec = layer.spec
        arrays[p + "spec"] = np.array(
            [spec.index, spec.in_size, spec.stride,
             spec.in_channels, spec.out_channels]
        )
        arrays[p + "dwc_weight"] = layer.dwc_weight
        arrays[p + "pwc_weight"] = layer.pwc_weight
        arrays[p + "dwc_k"] = np.asarray(layer.dwc_nonconv.k_raw)
        arrays[p + "dwc_b"] = np.asarray(layer.dwc_nonconv.b_raw)
        arrays[p + "pwc_k"] = np.asarray(layer.pwc_nonconv.k_raw)
        arrays[p + "pwc_b"] = np.asarray(layer.pwc_nonconv.b_raw)
        arrays[p + "scales"] = np.array(
            [layer.input_params.scale, layer.mid_params.scale,
             layer.output_params.scale]
        )
        arrays[p + "zero_points"] = np.array(
            [layer.input_params.zero_point, layer.mid_params.zero_point,
             layer.output_params.zero_point]
        )
    np.savez_compressed(path, **arrays)


def load_quantized_model(path: str) -> QuantizedMobileNet:
    """Restore a model written by :func:`save_quantized_model`.

    Raises:
        QuantizationError: On version mismatch or a malformed archive.
    """
    with np.load(path) as data:
        version = int(data["format_version"])
        if version != FORMAT_VERSION:
            raise QuantizationError(
                f"unsupported model format version {version} "
                f"(expected {FORMAT_VERSION})"
            )
        num_layers = int(data["num_layers"])

        stem_weight = data["stem_conv_weight"]
        out_ch, in_ch, k, _ = stem_weight.shape
        stem_conv = Conv2d(
            in_ch, out_ch, k,
            stride=int(data["stem_conv_stride"]),
            padding=int(data["stem_conv_padding"]),
        )
        stem_conv.weight.data = stem_weight.copy()
        stem_bn = BatchNorm2d(out_ch, eps=float(data["stem_bn_eps"]))
        stem_bn.gamma.data = data["stem_bn_gamma"].copy()
        stem_bn.beta.data = data["stem_bn_beta"].copy()
        stem_bn.running_mean = data["stem_bn_mean"].copy()
        stem_bn.running_var = data["stem_bn_var"].copy()
        stem = [stem_conv, stem_bn, ReLU()]
        for layer in stem:
            layer.eval()

        layers = []
        for i in range(num_layers):
            p = f"layer{i}_"
            if p + "spec" not in data:
                raise QuantizationError(
                    f"archive is missing layer {i} (of {num_layers})"
                )
            idx, in_size, stride, d, kk = (int(v) for v in data[p + "spec"])
            spec = DSCLayerSpec(idx, in_size, stride, d, kk)
            scales = data[p + "scales"]
            # Archives written before affine support carry no zero-points;
            # those models are symmetric, so default to 0.
            if p + "zero_points" in data:
                zps = [int(v) for v in data[p + "zero_points"]]
            else:
                zps = [0, 0, 0]
            layers.append(
                QuantizedDSCLayer(
                    spec=spec,
                    dwc_weight=data[p + "dwc_weight"].copy(),
                    pwc_weight=data[p + "pwc_weight"].copy(),
                    dwc_nonconv=NonConvParams(
                        k_raw=data[p + "dwc_k"].copy(),
                        b_raw=data[p + "dwc_b"].copy(),
                        relu=True,
                        relu_floor=zps[1],
                    ),
                    pwc_nonconv=NonConvParams(
                        k_raw=data[p + "pwc_k"].copy(),
                        b_raw=data[p + "pwc_b"].copy(),
                        relu=True,
                        relu_floor=zps[2],
                    ),
                    input_params=QuantParams(
                        float(scales[0]), signed=False, zero_point=zps[0]
                    ),
                    mid_params=QuantParams(
                        float(scales[1]), signed=False, zero_point=zps[1]
                    ),
                    output_params=QuantParams(
                        float(scales[2]), signed=False, zero_point=zps[2]
                    ),
                )
            )

        head_weight = data["head_weight"]
        head_linear = Linear(head_weight.shape[1], head_weight.shape[0])
        head_linear.weight.data = head_weight.copy()
        head_linear.bias.data = data["head_bias"].copy()
        head_linear.eval()

        return QuantizedMobileNet(
            stem=stem,
            input_params=QuantParams(float(data["input_scale"]),
                                     signed=bool(data["input_signed"])),
            layers=layers,
            head_pool=GlobalAvgPool(),
            head_linear=head_linear,
        )
