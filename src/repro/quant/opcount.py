"""Operation-count model for the Non-Conv folding ablation.

The paper claims the Non-Conv unit "reduces the overall number of
operations" by merging dequantization, batch norm, ReLU and quantization
into one multiply-add.  This module counts the elementary arithmetic
operations of both formulations per activation element, so the saving can
be quantified per layer and per network (the ablation bench prints it).

Unfolded chain, per element (Fig. 6 left):

* dequantization: 1 multiply (``acc * s_in*s_w``; the scale product is
  pre-computed),
* batch norm: 1 subtract, 1 multiply, 1 add  (``gamma/sigma`` folded
  offline, as any sane deployment would),
* ReLU: 1 compare,
* quantization: 1 multiply (by ``1/s_out``), 1 round, 1 clamp.

Total: 8 operations.  Folded Non-Conv, per element: 1 multiply, 1 add,
1 round, 1 compare+clamp (ReLU merges into the clamp's lower bound) = 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..nn.mobilenet import DSCLayerSpec

__all__ = ["NonConvOpCounts", "nonconv_op_counts", "network_nonconv_op_counts"]

UNFOLDED_OPS_PER_ELEMENT = 8
FOLDED_OPS_PER_ELEMENT = 4


@dataclass(frozen=True)
class NonConvOpCounts:
    """Operation counts of the two formulations for one layer.

    Attributes:
        elements: Activation elements passing through the stage(s).
        unfolded_ops: Ops with separate dequant/BN/ReLU/quant stages.
        folded_ops: Ops with the merged ``k*x + b`` Non-Conv unit.
    """

    elements: int
    unfolded_ops: int
    folded_ops: int

    @property
    def saved_ops(self) -> int:
        """Operations eliminated by folding."""
        return self.unfolded_ops - self.folded_ops

    @property
    def reduction_percent(self) -> float:
        """Relative saving in percent."""
        if self.unfolded_ops == 0:
            return 0.0
        return 100.0 * self.saved_ops / self.unfolded_ops

    def __add__(self, other: "NonConvOpCounts") -> "NonConvOpCounts":
        return NonConvOpCounts(
            elements=self.elements + other.elements,
            unfolded_ops=self.unfolded_ops + other.unfolded_ops,
            folded_ops=self.folded_ops + other.folded_ops,
        )


def nonconv_op_counts(spec: DSCLayerSpec) -> NonConvOpCounts:
    """Non-Conv operation counts for one DSC layer.

    Both the DWC→PWC stage (``N·M·D`` elements) and the PWC output stage
    (``N·M·K`` elements) pass through the unit.
    """
    n = spec.out_size
    elements = n * n * (spec.in_channels + spec.out_channels)
    return NonConvOpCounts(
        elements=elements,
        unfolded_ops=elements * UNFOLDED_OPS_PER_ELEMENT,
        folded_ops=elements * FOLDED_OPS_PER_ELEMENT,
    )


def network_nonconv_op_counts(
    specs: list[DSCLayerSpec],
) -> NonConvOpCounts:
    """Aggregate Non-Conv operation counts over a network."""
    if not specs:
        raise ConfigError("no layer specs supplied")
    total = NonConvOpCounts(0, 0, 0)
    for spec in specs:
        total = total + nonconv_op_counts(spec)
    return total
