"""Quantization substrate: int8 scheme, LSQ, BN folding, int8 reference.

Implements the paper's quantization stack: symmetric 8-bit weights and
activations (LSQ-style learned steps for QAT, observer-based calibration
for PTQ) and the folding of dequantization + batch norm + ReLU +
requantization into the Non-Conv unit's ``y = k*x + b`` form with Q8.16
constants.
"""

from .fold import BNParams, NonConvParams, derive_nonconv_params
from .lsq import LSQQuantizer, lsq_initial_step
from .observer import MinMaxObserver, PercentileObserver
from .opcount import (
    NonConvOpCounts,
    network_nonconv_op_counts,
    nonconv_op_counts,
)
from .qat import (
    QATDepthwiseConv2d,
    QATPointwiseConv2d,
    convert_qat_mobilenet,
    prepare_qat_mobilenet,
)
from .qmodel import QuantizedDSCLayer, QuantizedMobileNet, quantize_mobilenet
from .serialize import load_quantized_model, save_quantized_model
from .scheme import QuantParams, dequantize, quantization_error, quantize

__all__ = [
    "QuantParams",
    "quantize",
    "dequantize",
    "quantization_error",
    "MinMaxObserver",
    "PercentileObserver",
    "LSQQuantizer",
    "lsq_initial_step",
    "BNParams",
    "NonConvParams",
    "derive_nonconv_params",
    "QuantizedDSCLayer",
    "QuantizedMobileNet",
    "quantize_mobilenet",
    "prepare_qat_mobilenet",
    "convert_qat_mobilenet",
    "QATDepthwiseConv2d",
    "QATPointwiseConv2d",
    "NonConvOpCounts",
    "nonconv_op_counts",
    "network_nonconv_op_counts",
    "save_quantized_model",
    "load_quantized_model",
]
