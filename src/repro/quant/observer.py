"""Calibration observers: derive quantization scales from sample data.

Observers accumulate statistics over one or more calibration batches and
then emit :class:`~repro.quant.scheme.QuantParams`.  Two strategies are
provided: plain absolute-max and a clipping percentile variant that is more
robust to outliers (a common post-training-quantization practice).
"""

from __future__ import annotations

import numpy as np

from ..errors import QuantizationError
from .scheme import QuantParams

__all__ = ["MinMaxObserver", "PercentileObserver"]


class MinMaxObserver:
    """Tracks the absolute maximum and maps it to the int8 range."""

    def __init__(self, signed: bool = True) -> None:
        self.signed = signed
        self._abs_max = 0.0
        self._observed = False

    def observe(self, x: np.ndarray) -> None:
        """Fold one batch of values into the statistics."""
        if x.size == 0:
            raise QuantizationError("cannot observe an empty array")
        self._abs_max = max(self._abs_max, float(np.max(np.abs(x))))
        self._observed = True

    def compute_params(self) -> QuantParams:
        """Emit quantization parameters from the observed range."""
        if not self._observed:
            raise QuantizationError("observer has not seen any data")
        # An all-zero tensor still needs a valid (arbitrary) positive scale.
        abs_max = self._abs_max if self._abs_max > 0 else 1.0
        return QuantParams(scale=abs_max / 127.0, signed=self.signed)


class PercentileObserver:
    """Clips to a high percentile of |x| before deriving the scale.

    Keeping the histogram of every batch exactly would be costly; instead
    the observer stores per-batch percentile estimates and combines them
    with the maximum, which is a good, cheap approximation for the smooth
    activation distributions seen here.
    """

    def __init__(self, percentile: float = 99.9, signed: bool = True) -> None:
        if not 50.0 < percentile <= 100.0:
            raise QuantizationError(
                f"percentile must be in (50, 100] (got {percentile})"
            )
        self.percentile = percentile
        self.signed = signed
        self._estimates: list[float] = []

    def observe(self, x: np.ndarray) -> None:
        """Fold one batch of values into the statistics."""
        if x.size == 0:
            raise QuantizationError("cannot observe an empty array")
        self._estimates.append(
            float(np.percentile(np.abs(x), self.percentile))
        )

    def compute_params(self) -> QuantParams:
        """Emit quantization parameters from the observed range."""
        if not self._estimates:
            raise QuantizationError("observer has not seen any data")
        clip = max(self._estimates)
        if clip <= 0:
            clip = 1.0
        return QuantParams(scale=clip / 127.0, signed=self.signed)
