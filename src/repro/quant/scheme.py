"""Uniform int8 quantization scheme (symmetric by default, affine capable).

EDEA uses 8-bit weights and activations (quantized with LSQ in the paper).
We model uniform quantization ``x_q = clip(round(x / s) + z, lo, hi)`` with
a per-tensor real scale ``s`` and an integer zero-point ``z``.  The paper's
scheme is symmetric (``z = 0``, the default); activations after ReLU are
non-negative, so their effective range is ``[0, 127]``.  A nonzero
zero-point models asymmetric deployments, and every consumer must then
apply the full affine dequantization ``(x_q - z) * s``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import QuantizationError

__all__ = ["QuantParams", "quantize", "dequantize", "quantization_error"]

INT8_MIN = -128
INT8_MAX = 127


@dataclass(frozen=True)
class QuantParams:
    """Per-tensor uniform quantization parameters.

    Attributes:
        scale: Real value of one integer step; must be positive.
        signed: When False the integer range is ``[0, 127]`` (post-ReLU
            activations); when True it is ``[-128, 127]``.
        zero_point: Integer code that represents real zero.  The paper's
            symmetric scheme uses 0 (the default); asymmetric tensors use
            a nonzero value inside the integer range.
    """

    scale: float
    signed: bool = True
    zero_point: int = 0

    def __post_init__(self) -> None:
        if not np.isfinite(self.scale) or self.scale <= 0:
            raise QuantizationError(
                f"scale must be a positive finite number (got {self.scale})"
            )
        if not isinstance(self.zero_point, (int, np.integer)):
            raise QuantizationError(
                f"zero_point must be an integer (got {self.zero_point!r})"
            )
        if not self.qmin <= self.zero_point <= self.qmax:
            raise QuantizationError(
                f"zero_point {self.zero_point} outside the integer range "
                f"[{self.qmin}, {self.qmax}]"
            )

    @property
    def qmin(self) -> int:
        """Lower end of the integer range."""
        return INT8_MIN if self.signed else 0

    @property
    def qmax(self) -> int:
        """Upper end of the integer range."""
        return INT8_MAX

    @property
    def max_representable(self) -> float:
        """Largest real magnitude representable without clipping."""
        return self.qmax * self.scale


def quantize(x: np.ndarray, params: QuantParams) -> np.ndarray:
    """Quantize a real array to int8 under ``params``."""
    q = np.round(np.asarray(x, dtype=np.float64) / params.scale)
    q = q + params.zero_point
    return np.clip(q, params.qmin, params.qmax).astype(np.int8)


def dequantize(q: np.ndarray, params: QuantParams) -> np.ndarray:
    """Map int8 codes back to real values (full affine: ``(q - z) * s``)."""
    return (
        np.asarray(q, dtype=np.float64) - params.zero_point
    ) * params.scale


def quantization_error(x: np.ndarray, params: QuantParams) -> float:
    """Root-mean-square error introduced by quantizing ``x``."""
    rec = dequantize(quantize(x, params), params)
    return float(np.sqrt(np.mean((rec - np.asarray(x)) ** 2)))
