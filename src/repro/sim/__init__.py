"""Cycle-level simulation: pipeline timing (Eqs. 1-2), network runner
with bit-exact verification, run statistics, and pipeline tracing."""

from .batch import BatchResult, run_batch
from .fastpath import analytic_layer_stats
from .faults import (
    FaultImpact,
    FaultSpec,
    inject_weight_fault,
    measure_impact,
)
from .pipeline import LatencyBreakdown, eq1_tile_latency_cycles, layer_latency
from .runner import AcceleratorRunner
from .schedule import (
    OpKind,
    ScheduleOp,
    generate_layer_schedule,
    schedule_summary,
)
from .stats import NetworkRunStats
from .tracer import STAGES, PipelineEvent, trace_tile_pipeline

__all__ = [
    "analytic_layer_stats",
    "LatencyBreakdown",
    "eq1_tile_latency_cycles",
    "layer_latency",
    "AcceleratorRunner",
    "OpKind",
    "ScheduleOp",
    "generate_layer_schedule",
    "schedule_summary",
    "NetworkRunStats",
    "STAGES",
    "PipelineEvent",
    "trace_tile_pipeline",
    "FaultSpec",
    "FaultImpact",
    "inject_weight_fault",
    "measure_impact",
    "BatchResult",
    "run_batch",
]
