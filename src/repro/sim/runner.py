"""Run quantized networks on the accelerator model, with verification.

The runner connects the three layers of the reproduction: the quantized
reference model (bit-exact int8 semantics), the accelerator model (same
semantics + tiling/scheduling + cycle counts), and the evaluation harness
(which consumes the stats).  With ``verify=True`` every layer's output is
compared element-for-element against the reference; a mismatch raises
:class:`~repro.errors.SimulationError` naming the offending layer and the
first mismatching element, so experiments can't silently run on wrong
functional behaviour.

With ``fast=True`` the runner skips the event-driven tile simulation and
instead computes outputs with the vectorized int8 reference while
deriving the run statistics from the closed-form timing model
(:mod:`repro.sim.fastpath`) — cycle totals identical, ~40x faster — for
callers that only need aggregate latency/energy.
"""

from __future__ import annotations

import numpy as np

from ..arch.accelerator import DSCAccelerator, LayerRunStats
from ..arch.params import EDEA_CONFIG, ArchConfig
from ..errors import ShapeError, SimulationError
from ..quant.qmodel import QuantizedMobileNet
from .fastpath import analytic_layer_stats
from .stats import NetworkRunStats

__all__ = ["AcceleratorRunner"]


class AcceleratorRunner:
    """Executes a :class:`QuantizedMobileNet`'s DSC stack on the accelerator."""

    def __init__(
        self,
        qmodel: QuantizedMobileNet,
        config: ArchConfig = EDEA_CONFIG,
        direct_transfer: bool = True,
        verify: bool = True,
        fast: bool = False,
    ) -> None:
        """Create a runner.

        Args:
            qmodel: The quantized network to execute.
            config: Architecture parameters.
            direct_transfer: Route the DWC-to-PWC intermediate through the
                on-chip buffer (the paper's design) instead of spilling.
            verify: Compare every accelerator layer output against the
                int8 reference (ignored in fast mode, whose outputs *are*
                the reference).
            fast: Use the analytic fast-latency mode instead of the
                event-driven simulation.
        """
        self.qmodel = qmodel
        self.config = config
        self.verify = verify
        self.fast = fast
        self.direct_transfer = direct_transfer
        self.accelerator = DSCAccelerator(
            config=config, direct_transfer=direct_transfer
        )

    def run_layer(
        self, layer_index: int, x_q: np.ndarray
    ) -> tuple[np.ndarray, LayerRunStats]:
        """Run one DSC layer on the accelerator (optionally verified)."""
        if not 0 <= layer_index < len(self.qmodel.layers):
            raise ShapeError(f"no DSC layer {layer_index}")
        layer = self.qmodel.layers[layer_index]
        if self.fast:
            mid_ref, out_ref = layer.forward(x_q[np.newaxis])
            stats = analytic_layer_stats(
                layer,
                x_q,
                mid_ref[0],
                config=self.config,
                direct_transfer=self.direct_transfer,
            )
            return out_ref[0], stats
        out_q, stats = self.accelerator.run_layer(layer, x_q)
        if self.verify:
            _, ref = layer.forward(x_q[np.newaxis])
            if not np.array_equal(out_q, ref[0]):
                mismatches = np.argwhere(out_q != ref[0])
                channel, row, col = (int(v) for v in mismatches[0])
                plural = "element" if len(mismatches) == 1 else "elements"
                raise SimulationError(
                    f"accelerator output of layer {layer_index} differs "
                    f"from the int8 reference in {len(mismatches)} "
                    f"{plural}; first mismatch at channel {channel}, "
                    f"row {row}, col {col}: accelerator produced "
                    f"{int(out_q[channel, row, col])}, reference expects "
                    f"{int(ref[0][channel, row, col])}"
                )
        return out_q, stats

    def run_network(self, image: np.ndarray) -> NetworkRunStats:
        """Run all 13 DSC layers for one input image.

        Args:
            image: Float image, shape ``(3, H, W)`` or ``(1, 3, H, W)``.

        Returns:
            :class:`NetworkRunStats` with per-layer measurements.
        """
        if image.ndim == 3:
            image = image[np.newaxis]
        if image.ndim != 4 or image.shape[0] != 1:
            raise ShapeError(
                f"run_network expects a single image, got {image.shape}"
            )
        x_q = self.qmodel.stem_forward(image)[0]
        per_layer = []
        for index in range(len(self.qmodel.layers)):
            x_q, stats = self.run_layer(index, x_q)
            per_layer.append(stats)
        return NetworkRunStats(layers=per_layer, clock_hz=self.config.clock_hz)
