"""Closed-form pipeline timing model (paper Fig. 7, Eqs. 1 and 2).

The dual engines stream: after a 9-cycle initiation (ifmap/weight load,
DWC pass, Non-Conv, intermediate-buffer write, PWC weight load, PWC pass,
output), the PWC engine produces one ``Tn x Tm x Tk`` output tile per
cycle.  The paper gives

    Lat_tile  = (9 + ceil(N/Tn) * ceil(M/Tm) * ceil(K/Tk)) * T_period   (1)
    Lat_total = Lat_tile * N_tiles * ceil(D/Td)                         (2)

where ``N_tiles`` is the number of ifmap tiles forced by the ifmap-buffer
capacity.  :func:`layer_latency` evaluates the composed form with the
buffer-constrained spatial tiling (each ifmap tile pays its own initiation)
and is validated cycle-for-cycle against the event-driven accelerator model
in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..arch.params import EDEA_CONFIG, ArchConfig
from ..errors import ConfigError
from ..nn.mobilenet import DSCLayerSpec

__all__ = ["LatencyBreakdown", "eq1_tile_latency_cycles", "layer_latency"]


@dataclass(frozen=True)
class LatencyBreakdown:
    """Cycle-level latency decomposition of one layer.

    Attributes:
        init_cycles: Total pipeline-fill cycles (9 per tile per group).
        streaming_cycles: Output-producing cycles.
        spatial_tiles: Ifmap tiles per channel group.
        channel_groups: ``ceil(D/Td)``.
    """

    init_cycles: int
    streaming_cycles: int
    spatial_tiles: int
    channel_groups: int

    @property
    def total_cycles(self) -> int:
        """Total layer latency in cycles."""
        return self.init_cycles + self.streaming_cycles

    @property
    def init_fraction(self) -> float:
        """Share of cycles spent in initiation (grows for small maps —
        the effect that caps layer 11/12 throughput at 905.6 GOPS)."""
        return self.init_cycles / self.total_cycles if self.total_cycles else 0.0

    def latency_seconds(self, clock_hz: float) -> float:
        """Wall-clock latency."""
        return self.total_cycles / clock_hz


def eq1_tile_latency_cycles(
    out_rows: int,
    out_cols: int,
    kernels: int,
    config: ArchConfig = EDEA_CONFIG,
) -> int:
    """Paper Eq. 1 for one tiled ifmap (result in cycles).

    ``(9 + ceil(N/Tn) * ceil(M/Tm) * ceil(K/Tk))`` for a tile producing an
    ``out_rows x out_cols`` output patch over ``kernels`` output channels.
    """
    if out_rows < 1 or out_cols < 1 or kernels < 1:
        raise ConfigError("tile dimensions must be positive")
    positions = math.ceil(out_rows / config.tn) * math.ceil(
        out_cols / config.tm
    )
    return config.init_cycles + positions * math.ceil(kernels / config.tk)


def layer_latency(
    spec: DSCLayerSpec, config: ArchConfig = EDEA_CONFIG
) -> LatencyBreakdown:
    """Eq. 2 composed over the buffer-constrained spatial tiling.

    Every ifmap tile pays the initiation once per channel group; streaming
    cycles cover each output position once per (channel group, kernel
    group).  Edge tiles of non-divisible maps are handled with ceiling
    division, though MobileNetV1-CIFAR10 maps divide evenly.
    """
    out = spec.out_size
    n_kernel_groups = math.ceil(spec.out_channels / config.tk)
    n_channel_groups = math.ceil(spec.in_channels / config.td)

    edge = config.max_output_tile
    init_total = 0
    streaming_total = 0
    tiles = 0
    for ty in range(0, out, edge):
        for tx in range(0, out, edge):
            tile_h = min(edge, out - ty)
            tile_w = min(edge, out - tx)
            positions = math.ceil(tile_h / config.tn) * math.ceil(
                tile_w / config.tm
            )
            init_total += config.init_cycles
            streaming_total += positions * n_kernel_groups
            tiles += 1
    return LatencyBreakdown(
        init_cycles=init_total * n_channel_groups,
        streaming_cycles=streaming_total * n_channel_groups,
        spatial_tiles=tiles,
        channel_groups=n_channel_groups,
    )
