"""Analytic fast-latency mode: layer statistics without event simulation.

Sweeps and design-space explorations mostly consume *aggregate* latency,
throughput, and energy — not per-tile event traces.  For those callers
the event-driven :class:`~repro.arch.accelerator.DSCAccelerator` is
overkill: its Python tile loops dominate wall-clock time while its cycle
totals equal the closed-form Eqs. 1-2 by construction (the test suite
asserts this).  This module rebuilds a :class:`LayerRunStats` from the
closed-form model plus vectorized tensor statistics, roughly 40x faster
per network than the event-driven run.

Exact by construction (bit-for-bit equal to the event model on every
geometry, divisible or not): cycles, initiation cycles, busy cycles, MAC
counts, element counts, tile/group counts, buffer access totals, external
traffic, and the zero counts themselves — the engine windows form a
ceil-grid over the (zero-extended) padded input, recovered with one
vectorized sliding-window pass, and the edge intermediate tiles the
Non-Conv stage produces beyond the output map are recomputed with the
same integer arithmetic the engines use.  The test suite asserts parity
against the event-driven model for every zoo geometry, including the
stride/pad edge layers whose zero statistics a whole-tensor fraction
would inflate with the unread padding ring.
"""

from __future__ import annotations

import math

import numpy as np

from ..arch.accelerator import LayerRunStats
from ..arch.params import EDEA_CONFIG, ArchConfig
from ..errors import SimulationError
from ..nn import functional as F
from ..quant.qmodel import QuantizedDSCLayer
from .pipeline import layer_latency

__all__ = ["analytic_layer_stats"]


def analytic_layer_stats(
    layer: QuantizedDSCLayer,
    x_q: np.ndarray,
    mid_q: np.ndarray,
    config: ArchConfig = EDEA_CONFIG,
    direct_transfer: bool = True,
) -> LayerRunStats:
    """Closed-form :class:`LayerRunStats` for one DSC layer run.

    Args:
        layer: The quantized layer (geometry and weights).
        x_q: int8 layer input, shape ``(D, H, W)`` — drives the DWC zero
            statistics.
        mid_q: int8 intermediate (DWC output after Non-Conv), shape
            ``(D, N, N)`` — drives the PWC zero statistics.
        config: Architecture parameters.
        direct_transfer: Matches the accelerator's intermediate-buffer
            vs external-spill accounting.
    """
    cfg = config
    spec = layer.spec
    d, k_total = spec.in_channels, spec.out_channels
    if d % cfg.td:
        raise SimulationError(
            f"channel count {d} not a multiple of Td={cfg.td}"
        )
    if k_total % cfg.tk:
        raise SimulationError(
            f"kernel count {k_total} not a multiple of Tk={cfg.tk}"
        )
    n_channel_groups = d // cfg.td
    n_kernel_groups = k_total // cfg.tk
    out_size = spec.out_size
    stride = spec.stride
    k = cfg.kernel_size

    breakdown = layer_latency(spec, cfg)

    # Per-channel-group position/tile geometry (mirrors the accelerator's
    # tile loops, but in closed form).
    edge = cfg.max_output_tile
    positions = 0
    ifmap_fill_entries = 0
    for ty in range(0, out_size, edge):
        for tx in range(0, out_size, edge):
            tile_h = min(edge, out_size - ty)
            tile_w = min(edge, out_size - tx)
            positions += math.ceil(tile_h / cfg.tn) * math.ceil(
                tile_w / cfg.tm
            )
            ext_h = (tile_h - 1) * stride + k
            ext_w = (tile_w - 1) * stride + k
            ifmap_fill_entries += cfg.td * ext_h * ext_w

    dwc_invocations = positions * n_channel_groups
    pwc_invocations = dwc_invocations * n_kernel_groups
    span_y = (cfg.tn - 1) * stride + k
    span_x = (cfg.tm - 1) * stride + k
    window_entries = cfg.td * span_y * span_x
    mid_tile_entries = cfg.td * cfg.tn * cfg.tm

    # Resident window extents: edge windows of non-divisible maps are
    # clipped at their tile's buffered extent and zero-filled to the
    # engine geometry — only the resident elements are ifmap-buffer
    # reads (the fill is wired, not fetched).
    def resident_spans(tile_out: int, span: int) -> int:
        total = 0
        for i in range(math.ceil(out_size / tile_out)):
            o = i * tile_out
            t0 = (o // edge) * edge
            tile_len = min(edge, out_size - t0)
            tile_end = t0 * stride + (tile_len - 1) * stride + k
            total += min(span, tile_end - o * stride)
        return total

    resident_h = resident_spans(cfg.tn, span_y)
    resident_w = resident_spans(cfg.tm, span_x)

    dwc_elements = dwc_invocations * window_entries
    pwc_elements = pwc_invocations * mid_tile_entries

    # Zero statistics — exact for every geometry, matching the event model
    # window for window.  The engine windows form a ceil-grid over the
    # padded input: one window per (Tn, Tm) output position, starting at
    # multiples of (Tn*stride, Tm*stride) with extent (span_y, span_x).
    # Edge windows of non-divisible maps are clipped at the consumed
    # region and zero-filled to the fixed engine geometry; bottom/right
    # padding the engine never consumes (stride-2 layers read only
    # (N-1)*stride + k rows of the padded map) is excluded because the
    # grid stops at the last real output position.  Zero-extending the
    # padded map therefore reproduces every streamed window's content:
    # whole-tensor fractions would instead inflate the zero statistic
    # with the unread padding ring.
    pad = (k - 1) // 2
    padded = np.pad(x_q, ((0, 0), (pad, pad), (pad, pad)), mode="constant")
    pos_rows = math.ceil(out_size / cfg.tn)
    pos_cols = math.ceil(out_size / cfg.tm)
    need_h = (pos_rows * cfg.tn - 1) * stride + k
    need_w = (pos_cols * cfg.tm - 1) * stride + k
    grow_h = max(0, need_h - padded.shape[1])
    grow_w = max(0, need_w - padded.shape[2])
    if grow_h or grow_w:
        padded = np.pad(
            padded, ((0, 0), (0, grow_h), (0, grow_w)), mode="constant"
        )
    windows = np.lib.stride_tricks.sliding_window_view(
        padded, (span_y, span_x), axis=(1, 2)
    )
    grid = windows[:, :: cfg.tn * stride, :: cfg.tm * stride][
        :, :pos_rows, :pos_cols
    ]
    # The grid spans all D channels, so every channel group's windows
    # are already included exactly once.
    dwc_zeros = int(np.count_nonzero(grid == 0))

    # PWC input tiles are always the full Td x Tn x Tm intermediate the
    # Non-Conv stage produced — including, at edge positions, the values
    # it computes for output rows/cols beyond the map.  Recover those by
    # rerunning the integer DWC + Non-Conv over the zero-extended input
    # (bit-identical to what the engines stream); divisible maps skip
    # the extra convolution since mid_q already covers every position.
    full_h = pos_rows * cfg.tn
    full_w = pos_cols * cfg.tm
    if (full_h, full_w) == (out_size, out_size):
        mid_zeros = int(np.count_nonzero(mid_q == 0))
    else:
        acc = F.depthwise_conv2d(
            padded[np.newaxis].astype(np.int64),
            layer.dwc_weight.astype(np.int64),
            None,
            stride=stride,
            padding=0,
        )[0, :, :full_h, :full_w]
        mid_ext = layer.dwc_nonconv.apply(acc, channel_axis=0)
        mid_zeros = int(np.count_nonzero(mid_ext == 0))
    pwc_zeros = n_kernel_groups * mid_zeros

    # Buffer access totals, mirroring the event model invocation for
    # invocation (fills count as writes, drains are free).
    dwc_weight_entries = cfg.td * k * k
    offline_entries = 2 * cfg.td
    pwc_slice_entries = k_total * cfg.td
    pwc_group_entries = cfg.tk * cfg.td
    buffer_accesses = {
        "dwc_ifmap": n_channel_groups * ifmap_fill_entries
        + n_channel_groups * cfg.td * resident_h * resident_w,
        "dwc_weight": n_channel_groups * dwc_weight_entries
        + dwc_invocations * dwc_weight_entries,
        "offline": n_channel_groups * offline_entries
        + dwc_invocations * offline_entries,
        "intermediate": (
            dwc_invocations * mid_tile_entries
            + pwc_invocations * mid_tile_entries
            if direct_transfer
            else 0
        ),
        "pwc_weight": n_channel_groups * pwc_slice_entries
        + pwc_invocations * pwc_group_entries,
    }

    spill_entries = 0 if direct_transfer else n_channel_groups * (
        out_size * out_size * cfg.td
    )
    external = {
        "activation_reads": n_channel_groups * ifmap_fill_entries
        + spill_entries,
        "activation_writes": k_total * out_size * out_size + spill_entries,
        "weight_reads": n_channel_groups
        * (dwc_weight_entries + pwc_slice_entries),
        "offline_reads": n_channel_groups * offline_entries,
    }

    return LayerRunStats(
        layer_index=spec.index,
        cycles=breakdown.total_cycles,
        init_cycle_total=breakdown.init_cycles,
        dwc_busy_cycles=dwc_invocations,
        pwc_busy_cycles=pwc_invocations,
        dwc_macs=dwc_invocations * cfg.dwc_macs_per_cycle,
        pwc_macs=pwc_invocations * cfg.pwc_macs_per_cycle,
        dwc_input_zeros=dwc_zeros,
        dwc_input_elements=dwc_elements,
        pwc_input_zeros=pwc_zeros,
        pwc_input_elements=pwc_elements,
        spatial_tiles=breakdown.spatial_tiles,
        channel_groups=n_channel_groups,
        kernel_groups=n_kernel_groups,
        buffer_accesses=buffer_accesses,
        external=external,
    )
