"""Analytic fast-latency mode: layer statistics without event simulation.

Sweeps and design-space explorations mostly consume *aggregate* latency,
throughput, and energy — not per-tile event traces.  For those callers
the event-driven :class:`~repro.arch.accelerator.DSCAccelerator` is
overkill: its Python tile loops dominate wall-clock time while its cycle
totals equal the closed-form Eqs. 1-2 by construction (the test suite
asserts this).  This module rebuilds a :class:`LayerRunStats` from the
closed-form model plus vectorized tensor statistics, roughly 40x faster
per network than the event-driven run.

Exact by construction (bit-for-bit equal to the event model on the
evenly divisible MobileNet geometries): cycles, initiation cycles, busy
cycles, MAC counts, element counts, tile/group counts, buffer access
totals, external traffic, and — where the engine windows form a regular
grid over the padded input — the zero counts themselves, via one
vectorized sliding-window pass.  Geometries that don't grid-align fall
back to whole-tensor zero fractions, which land within a fraction of a
percent — plenty for the activity-dependent power model.
"""

from __future__ import annotations

import math

import numpy as np

from ..arch.accelerator import LayerRunStats
from ..arch.params import EDEA_CONFIG, ArchConfig
from ..errors import SimulationError
from ..quant.qmodel import QuantizedDSCLayer
from .pipeline import layer_latency

__all__ = ["analytic_layer_stats"]


def analytic_layer_stats(
    layer: QuantizedDSCLayer,
    x_q: np.ndarray,
    mid_q: np.ndarray,
    config: ArchConfig = EDEA_CONFIG,
    direct_transfer: bool = True,
) -> LayerRunStats:
    """Closed-form :class:`LayerRunStats` for one DSC layer run.

    Args:
        layer: The quantized layer (geometry and weights).
        x_q: int8 layer input, shape ``(D, H, W)`` — drives the DWC zero
            statistics.
        mid_q: int8 intermediate (DWC output after Non-Conv), shape
            ``(D, N, N)`` — drives the PWC zero statistics.
        config: Architecture parameters.
        direct_transfer: Matches the accelerator's intermediate-buffer
            vs external-spill accounting.
    """
    cfg = config
    spec = layer.spec
    d, k_total = spec.in_channels, spec.out_channels
    if d % cfg.td:
        raise SimulationError(
            f"channel count {d} not a multiple of Td={cfg.td}"
        )
    if k_total % cfg.tk:
        raise SimulationError(
            f"kernel count {k_total} not a multiple of Tk={cfg.tk}"
        )
    n_channel_groups = d // cfg.td
    n_kernel_groups = k_total // cfg.tk
    out_size = spec.out_size
    stride = spec.stride
    k = cfg.kernel_size

    breakdown = layer_latency(spec, cfg)

    # Per-channel-group position/tile geometry (mirrors the accelerator's
    # tile loops, but in closed form).
    edge = cfg.max_output_tile
    positions = 0
    ifmap_fill_entries = 0
    for ty in range(0, out_size, edge):
        for tx in range(0, out_size, edge):
            tile_h = min(edge, out_size - ty)
            tile_w = min(edge, out_size - tx)
            positions += math.ceil(tile_h / cfg.tn) * math.ceil(
                tile_w / cfg.tm
            )
            ext_h = (tile_h - 1) * stride + k
            ext_w = (tile_w - 1) * stride + k
            ifmap_fill_entries += cfg.td * ext_h * ext_w

    dwc_invocations = positions * n_channel_groups
    pwc_invocations = dwc_invocations * n_kernel_groups
    span_y = (cfg.tn - 1) * stride + k
    span_x = (cfg.tm - 1) * stride + k
    window_entries = cfg.td * span_y * span_x
    mid_tile_entries = cfg.td * cfg.tn * cfg.tm

    dwc_elements = dwc_invocations * window_entries
    pwc_elements = pwc_invocations * mid_tile_entries

    # Zero statistics.  On evenly divisible geometry the engine windows
    # form a regular grid over the padded input, so the exact counts come
    # from one vectorized sliding-window pass; otherwise fall back to
    # whole-tensor fractions (halo re-reads preserve the mix closely).
    pad = (k - 1) // 2
    padded = np.pad(x_q, ((0, 0), (pad, pad), (pad, pad)), mode="constant")
    divisible = out_size % cfg.tn == 0 and out_size % cfg.tm == 0
    grid_fits = (
        divisible
        and (out_size - 1) * stride + k <= padded.shape[1]
        and (out_size - 1) * stride + k <= padded.shape[2]
    )
    if grid_fits:
        windows = np.lib.stride_tricks.sliding_window_view(
            padded, (span_y, span_x), axis=(1, 2)
        )
        grid = windows[:, :: cfg.tn * stride, :: cfg.tm * stride][
            :, : out_size // cfg.tn, : out_size // cfg.tm
        ]
        # The grid spans all D channels, so every channel group's windows
        # are already included exactly once.
        dwc_zeros = int(np.count_nonzero(grid == 0))
        pwc_zeros = n_kernel_groups * int(np.count_nonzero(mid_q == 0))
    else:
        dwc_zeros = int(round(dwc_elements * float(np.mean(padded == 0))))
        pwc_zeros = int(round(pwc_elements * float(np.mean(mid_q == 0))))

    # Buffer access totals, mirroring the event model invocation for
    # invocation (fills count as writes, drains are free).
    dwc_weight_entries = cfg.td * k * k
    offline_entries = 2 * cfg.td
    pwc_slice_entries = k_total * cfg.td
    pwc_group_entries = cfg.tk * cfg.td
    buffer_accesses = {
        "dwc_ifmap": n_channel_groups * ifmap_fill_entries
        + dwc_invocations * window_entries,
        "dwc_weight": n_channel_groups * dwc_weight_entries
        + dwc_invocations * dwc_weight_entries,
        "offline": n_channel_groups * offline_entries
        + dwc_invocations * offline_entries,
        "intermediate": (
            dwc_invocations * mid_tile_entries
            + pwc_invocations * mid_tile_entries
            if direct_transfer
            else 0
        ),
        "pwc_weight": n_channel_groups * pwc_slice_entries
        + pwc_invocations * pwc_group_entries,
    }

    spill_entries = 0 if direct_transfer else n_channel_groups * (
        out_size * out_size * cfg.td
    )
    external = {
        "activation_reads": n_channel_groups * ifmap_fill_entries
        + spill_entries,
        "activation_writes": k_total * out_size * out_size + spill_entries,
        "weight_reads": n_channel_groups
        * (dwc_weight_entries + pwc_slice_entries),
        "offline_reads": n_channel_groups * offline_entries,
    }

    return LayerRunStats(
        layer_index=spec.index,
        cycles=breakdown.total_cycles,
        init_cycle_total=breakdown.init_cycles,
        dwc_busy_cycles=dwc_invocations,
        pwc_busy_cycles=pwc_invocations,
        dwc_macs=dwc_invocations * cfg.dwc_macs_per_cycle,
        pwc_macs=pwc_invocations * cfg.pwc_macs_per_cycle,
        dwc_input_zeros=dwc_zeros,
        dwc_input_elements=dwc_elements,
        pwc_input_zeros=pwc_zeros,
        pwc_input_elements=pwc_elements,
        spatial_tiles=breakdown.spatial_tiles,
        channel_groups=n_channel_groups,
        kernel_groups=n_kernel_groups,
        buffer_accesses=buffer_accesses,
        external=external,
    )
