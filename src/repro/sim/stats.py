"""Aggregated statistics for whole-network accelerator runs."""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.accelerator import LayerRunStats

__all__ = ["NetworkRunStats"]


@dataclass
class NetworkRunStats:
    """Per-layer stats plus network-level aggregates.

    Attributes:
        layers: One :class:`~repro.arch.accelerator.LayerRunStats` per DSC
            layer, in execution order.
        clock_hz: Clock the latencies/throughputs are evaluated at.
    """

    layers: list[LayerRunStats]
    clock_hz: float

    @property
    def total_cycles(self) -> int:
        """Sum of per-layer cycle counts."""
        return sum(layer.cycles for layer in self.layers)

    @property
    def total_macs(self) -> int:
        """Useful MACs across the network."""
        return sum(layer.total_macs for layer in self.layers)

    @property
    def total_ops(self) -> int:
        """Useful operations (2 per MAC)."""
        return sum(layer.total_ops for layer in self.layers)

    @property
    def total_latency_seconds(self) -> float:
        """End-to-end DSC latency (layers run back-to-back)."""
        return self.total_cycles / self.clock_hz

    @property
    def mean_layer_throughput_gops(self) -> float:
        """Arithmetic mean of per-layer throughputs (paper's "average
        throughput" aggregation, ≈981 GOPS)."""
        values = [
            layer.throughput_ops_per_second(self.clock_hz) / 1e9
            for layer in self.layers
        ]
        return sum(values) / len(values) if values else 0.0

    @property
    def aggregate_throughput_gops(self) -> float:
        """Ops-weighted throughput: total ops / total latency."""
        if self.total_cycles == 0:
            return 0.0
        return self.total_ops * self.clock_hz / self.total_cycles / 1e9

    def layer_throughputs_gops(self) -> list[float]:
        """Per-layer throughput series (Fig. 13)."""
        return [
            layer.throughput_ops_per_second(self.clock_hz) / 1e9
            for layer in self.layers
        ]

    def layer_latencies_ns(self) -> list[float]:
        """Per-layer latency series in nanoseconds (Fig. 10)."""
        return [
            1e9 * layer.cycles / self.clock_hz for layer in self.layers
        ]
