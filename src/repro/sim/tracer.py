"""Event tracing for the pipeline timing model (paper Fig. 7).

Generates the per-cycle occupancy of the pipeline stages for one tile —
the reproduction of the paper's timing diagram.  The trace is analytic
(derived from the same schedule as Eqs. 1-2), bounded in length, and used
by the Fig. 7 benchmark and the timing tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.params import EDEA_CONFIG, ArchConfig
from ..errors import ConfigError

__all__ = ["PipelineEvent", "trace_tile_pipeline", "STAGES"]

#: Pipeline stages in Fig. 7's order.
STAGES: tuple[str, ...] = (
    "dwc_input_load",
    "dwc_process",
    "offline_load",
    "nonconv_process",
    "intermediate_write",
    "pwc_weight_load",
    "pwc_process",
    "output",
)


@dataclass(frozen=True)
class PipelineEvent:
    """One stage occupying one cycle.

    Attributes:
        cycle: Clock cycle (0-based within the tile).
        stage: One of :data:`STAGES`.
        position: Output-position index the work belongs to.
        kernel_group: PWC kernel group (only for pwc/output stages).
    """

    cycle: int
    stage: str
    position: int
    kernel_group: int = 0


def trace_tile_pipeline(
    positions: int,
    kernel_groups: int,
    config: ArchConfig = EDEA_CONFIG,
    max_events: int = 100_000,
) -> list[PipelineEvent]:
    """Trace one tile's pipeline schedule.

    The initiation occupies the first ``init_cycles`` cycles (stages fill
    one after another, as Fig. 7 draws: the first PWC output appears at
    cycle 9); afterwards one PWC result is produced per cycle.  The DWC
    stage fires once per position and then idles for the remaining
    ``kernel_groups - 1`` cycles — the imbalance the paper notes.

    Args:
        positions: Output positions in the tile (``ceil(N/Tn)*ceil(M/Tm)``).
        kernel_groups: ``ceil(K/Tk)``.
        config: Architecture parameters (for ``init_cycles``).
        max_events: Safety bound on trace length.
    """
    if positions < 1 or kernel_groups < 1:
        raise ConfigError("positions and kernel_groups must be >= 1")
    events: list[PipelineEvent] = []

    def emit(event: PipelineEvent) -> None:
        if len(events) >= max_events:
            raise ConfigError(
                f"trace exceeds max_events={max_events}; "
                "trace a smaller tile"
            )
        events.append(event)

    # Initiation: the eight stages fill sequentially for position 0; the
    # ninth cycle delivers the first output (init_cycles = 9 total).
    fill_stages = STAGES[:-1]
    for cycle, stage in enumerate(fill_stages):
        emit(PipelineEvent(cycle=cycle, stage=stage, position=0))
    first_output_cycle = config.init_cycles

    # Streaming: one PWC result per cycle thereafter.
    cycle = first_output_cycle
    for position in range(positions):
        for kg in range(kernel_groups):
            emit(
                PipelineEvent(
                    cycle=cycle,
                    stage="pwc_process",
                    position=position,
                    kernel_group=kg,
                )
            )
            emit(
                PipelineEvent(
                    cycle=cycle,
                    stage="output",
                    position=position,
                    kernel_group=kg,
                )
            )
            if kg == 0 and position + 1 < positions:
                # The DWC engine computes the next position while the PWC
                # consumes the current one, then idles.
                emit(
                    PipelineEvent(
                        cycle=cycle,
                        stage="dwc_process",
                        position=position + 1,
                    )
                )
            cycle += 1
    return events
