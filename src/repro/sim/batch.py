"""Batch / streaming execution of the accelerator over many images.

The paper reports single-inference latency; a deployed accelerator runs a
stream.  This module executes a batch image-by-image (the EDEA design has
no inter-image parallelism — one DSC layer occupies both engines), keeps
per-image and aggregate statistics, and reports classification results,
giving the examples and tests an end-to-end "deployment" view.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..arch.params import EDEA_CONFIG, ArchConfig
from ..errors import ShapeError
from ..quant.qmodel import QuantizedMobileNet
from ..quant.scheme import dequantize
from .runner import AcceleratorRunner
from .stats import NetworkRunStats

__all__ = ["BatchResult", "run_batch"]


@dataclass
class BatchResult:
    """Outcome of streaming a batch through the accelerator.

    Attributes:
        logits: ``(N, classes)`` classifier outputs.
        per_image: One :class:`NetworkRunStats` per image.
        clock_hz: Clock used for time conversion.
    """

    logits: np.ndarray
    per_image: list[NetworkRunStats] = field(default_factory=list)
    clock_hz: float = EDEA_CONFIG.clock_hz

    @property
    def images(self) -> int:
        """Number of images processed."""
        return len(self.per_image)

    @property
    def total_cycles(self) -> int:
        """Cycles across the whole stream."""
        return sum(stats.total_cycles for stats in self.per_image)

    @property
    def total_latency_seconds(self) -> float:
        """Wall-clock time of the stream."""
        return self.total_cycles / self.clock_hz

    @property
    def frames_per_second(self) -> float:
        """Sustained inference rate (DSC stack only, as in the paper)."""
        if self.total_cycles == 0:
            return 0.0
        return self.images / self.total_latency_seconds

    @property
    def throughput_gops(self) -> float:
        """Aggregate ops-weighted throughput over the stream."""
        ops = sum(stats.total_ops for stats in self.per_image)
        if self.total_cycles == 0:
            return 0.0
        return ops * self.clock_hz / self.total_cycles / 1e9

    def predictions(self) -> np.ndarray:
        """Argmax class per image."""
        return self.logits.argmax(axis=1)


def run_batch(
    qmodel: QuantizedMobileNet,
    images: np.ndarray,
    config: ArchConfig = EDEA_CONFIG,
    verify: bool = False,
) -> BatchResult:
    """Stream a float image batch through the accelerator.

    Args:
        qmodel: Deployed quantized network.
        images: ``(N, 3, H, W)`` float batch.
        config: Architecture parameters.
        verify: Bit-exact per-layer verification (slower).

    Returns:
        :class:`BatchResult` with logits and per-image statistics.
    """
    if images.ndim != 4:
        raise ShapeError(f"expected a (N, 3, H, W) batch, got {images.shape}")
    runner = AcceleratorRunner(qmodel, config=config, verify=verify)
    all_logits = []
    per_image = []
    for i in range(images.shape[0]):
        image = images[i : i + 1]
        x_q = qmodel.stem_forward(image)[0]
        layer_stats = []
        for index in range(len(qmodel.layers)):
            x_q, stats = runner.run_layer(index, x_q)
            layer_stats.append(stats)
        per_image.append(
            NetworkRunStats(layers=layer_stats, clock_hz=config.clock_hz)
        )
        # Full affine dequantization: scale-only would shift every logit
        # for asymmetric output quantization (nonzero zero-point).
        x = dequantize(x_q[np.newaxis], qmodel.layers[-1].output_params)
        pooled = qmodel.head_pool.forward(x)
        all_logits.append(qmodel.head_linear.forward(pooled)[0])
    return BatchResult(
        logits=np.stack(all_logits),
        per_image=per_image,
        clock_hz=config.clock_hz,
    )
