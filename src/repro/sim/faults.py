"""Fault injection for reliability studies of the quantized datapath.

Injects controlled bit flips into the int8 weight tensors or the Non-Conv
constants of a quantized layer and quantifies the functional impact at
the layer output.  Two things this enables:

* **reliability analysis** — how much a single-event upset in the weight
  SRAM perturbs a layer (classically: high-order bits hurt, low-order
  bits vanish in the requantization), and
* **verification hardening** — the bit-exact runner must flag any
  injected fault that changes the output (asserted in the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..quant.fold import NonConvParams
from ..quant.qmodel import QuantizedDSCLayer

__all__ = ["FaultSpec", "FaultImpact", "inject_weight_fault", "measure_impact"]


@dataclass(frozen=True)
class FaultSpec:
    """One injected bit flip.

    Attributes:
        target: ``"dwc_weight"``, ``"pwc_weight"``, ``"dwc_k"`` or
            ``"pwc_k"``.
        flat_index: Flattened element index within the target tensor.
        bit: Bit position to flip (0 = LSB; int8 targets allow 0..7,
            Q8.16 constants 0..23).
    """

    target: str
    flat_index: int
    bit: int

    VALID_TARGETS = ("dwc_weight", "pwc_weight", "dwc_k", "pwc_k")

    def __post_init__(self) -> None:
        if self.target not in self.VALID_TARGETS:
            raise ConfigError(
                f"unknown fault target {self.target!r}; "
                f"valid: {', '.join(self.VALID_TARGETS)}"
            )
        max_bit = 7 if self.target.endswith("weight") else 23
        if not 0 <= self.bit <= max_bit:
            raise ConfigError(
                f"bit {self.bit} out of range 0..{max_bit} for "
                f"{self.target}"
            )
        if self.flat_index < 0:
            raise ConfigError(f"negative flat_index {self.flat_index}")


@dataclass(frozen=True)
class FaultImpact:
    """Output divergence caused by one fault.

    Attributes:
        changed_elements: Output elements that differ from fault-free.
        total_elements: Output size.
        max_abs_error: Largest int8 output deviation.
        mean_abs_error: Mean absolute output deviation.
    """

    changed_elements: int
    total_elements: int
    max_abs_error: int
    mean_abs_error: float

    @property
    def changed_fraction(self) -> float:
        """Fraction of outputs perturbed."""
        if self.total_elements == 0:
            return 0.0
        return self.changed_elements / self.total_elements

    @property
    def silent(self) -> bool:
        """True when the fault is completely masked by the datapath."""
        return self.changed_elements == 0


def _flip_int8(tensor: np.ndarray, flat_index: int, bit: int) -> np.ndarray:
    flat = tensor.reshape(-1).copy()
    if flat_index >= flat.size:
        raise ConfigError(
            f"flat_index {flat_index} out of range for tensor of "
            f"{flat.size} elements"
        )
    # two's-complement bit flip on the 8-bit pattern
    value = int(flat[flat_index]) & 0xFF
    value ^= 1 << bit
    if value >= 128:
        value -= 256
    flat[flat_index] = value
    return flat.reshape(tensor.shape)


def _flip_q8_16(raw: np.ndarray, flat_index: int, bit: int) -> np.ndarray:
    flat = np.asarray(raw, dtype=np.int64).reshape(-1).copy()
    if flat_index >= flat.size:
        raise ConfigError(
            f"flat_index {flat_index} out of range for tensor of "
            f"{flat.size} elements"
        )
    value = int(flat[flat_index]) & 0xFFFFFF  # 24-bit two's complement
    value ^= 1 << bit
    if value >= 1 << 23:
        value -= 1 << 24
    flat[flat_index] = value
    return flat.reshape(np.asarray(raw).shape)


def inject_weight_fault(
    layer: QuantizedDSCLayer, fault: FaultSpec
) -> QuantizedDSCLayer:
    """Return a copy of ``layer`` with one bit flipped per ``fault``."""
    dwc_w, pwc_w = layer.dwc_weight, layer.pwc_weight
    dwc_nc, pwc_nc = layer.dwc_nonconv, layer.pwc_nonconv
    if fault.target == "dwc_weight":
        dwc_w = _flip_int8(dwc_w, fault.flat_index, fault.bit)
    elif fault.target == "pwc_weight":
        pwc_w = _flip_int8(pwc_w, fault.flat_index, fault.bit)
    elif fault.target == "dwc_k":
        dwc_nc = NonConvParams(
            k_raw=_flip_q8_16(dwc_nc.k_raw, fault.flat_index, fault.bit),
            b_raw=np.asarray(dwc_nc.b_raw),
            relu=dwc_nc.relu,
            fmt=dwc_nc.fmt,
            relu_floor=dwc_nc.relu_floor,
        )
    else:  # pwc_k
        pwc_nc = NonConvParams(
            k_raw=_flip_q8_16(pwc_nc.k_raw, fault.flat_index, fault.bit),
            b_raw=np.asarray(pwc_nc.b_raw),
            relu=pwc_nc.relu,
            fmt=pwc_nc.fmt,
            relu_floor=pwc_nc.relu_floor,
        )
    return QuantizedDSCLayer(
        spec=layer.spec,
        dwc_weight=dwc_w,
        pwc_weight=pwc_w,
        dwc_nonconv=dwc_nc,
        pwc_nonconv=pwc_nc,
        input_params=layer.input_params,
        mid_params=layer.mid_params,
        output_params=layer.output_params,
    )


def measure_impact(
    layer: QuantizedDSCLayer,
    fault: FaultSpec,
    x_q: np.ndarray,
) -> FaultImpact:
    """Run the layer with and without the fault; compare int8 outputs."""
    _, clean = layer.forward(x_q[np.newaxis])
    faulty_layer = inject_weight_fault(layer, fault)
    _, faulty = faulty_layer.forward(x_q[np.newaxis])
    diff = np.abs(
        clean.astype(np.int64) - faulty.astype(np.int64)
    )
    return FaultImpact(
        changed_elements=int(np.count_nonzero(diff)),
        total_elements=int(diff.size),
        max_abs_error=int(diff.max()),
        mean_abs_error=float(diff.mean()),
    )
