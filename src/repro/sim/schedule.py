"""Explicit tile-schedule generation (the accelerator's control program).

The accelerator's controller walks a fixed loop nest (La dataflow with the
ifmap-buffer spatial tiling).  This module materializes that walk as an
explicit operation stream — the "microcode" of one layer — which the test
suite cross-checks against both the closed-form timing model and the
event-level simulator's invocation counts, and which makes the schedule
inspectable and unit-testable on its own.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Iterator

from ..arch.params import EDEA_CONFIG, ArchConfig
from ..errors import ConfigError
from ..nn.mobilenet import DSCLayerSpec

__all__ = ["OpKind", "ScheduleOp", "generate_layer_schedule", "schedule_summary"]


class OpKind(Enum):
    """Controller operation types, in pipeline order."""

    LOAD_DWC_WEIGHTS = "load_dwc_weights"
    LOAD_OFFLINE = "load_offline"
    LOAD_PWC_WEIGHTS = "load_pwc_weights"
    LOAD_IFMAP_TILE = "load_ifmap_tile"
    DWC_PASS = "dwc_pass"
    NONCONV_PASS = "nonconv_pass"
    PWC_PASS = "pwc_pass"
    STORE_OUTPUT = "store_output"


@dataclass(frozen=True)
class ScheduleOp:
    """One controller operation.

    Attributes:
        kind: Operation type.
        channel_group: Td-group index (-1 where not applicable).
        tile: Linear ifmap-tile index (-1 where not applicable).
        position: Output-position index within the tile (-1 if N/A).
        kernel_group: Tk-group index (-1 if N/A).
    """

    kind: OpKind
    channel_group: int = -1
    tile: int = -1
    position: int = -1
    kernel_group: int = -1


def generate_layer_schedule(
    spec: DSCLayerSpec, config: ArchConfig = EDEA_CONFIG
) -> Iterator[ScheduleOp]:
    """Yield the full operation stream of one layer.

    Loop order (outermost first): channel group → ifmap tile → position →
    kernel group, with per-group weight/offline loads and a final output
    store per kernel group — exactly the walk
    :class:`~repro.arch.accelerator.DSCAccelerator` performs.
    """
    if spec.in_channels % config.td:
        raise ConfigError(
            f"channels {spec.in_channels} not a multiple of Td={config.td}"
        )
    if spec.out_channels % config.tk:
        raise ConfigError(
            f"kernels {spec.out_channels} not a multiple of Tk={config.tk}"
        )
    out = spec.out_size
    n_channel_groups = spec.in_channels // config.td
    n_kernel_groups = spec.out_channels // config.tk
    edge = config.max_output_tile
    tile_starts = list(range(0, out, edge))

    for group in range(n_channel_groups):
        yield ScheduleOp(OpKind.LOAD_DWC_WEIGHTS, channel_group=group)
        yield ScheduleOp(OpKind.LOAD_OFFLINE, channel_group=group)
        yield ScheduleOp(OpKind.LOAD_PWC_WEIGHTS, channel_group=group)
        tile_index = 0
        for ty in tile_starts:
            for tx in tile_starts:
                yield ScheduleOp(
                    OpKind.LOAD_IFMAP_TILE,
                    channel_group=group,
                    tile=tile_index,
                )
                tile_h = min(edge, out - ty)
                tile_w = min(edge, out - tx)
                positions = math.ceil(tile_h / config.tn) * math.ceil(
                    tile_w / config.tm
                )
                for pos in range(positions):
                    yield ScheduleOp(
                        OpKind.DWC_PASS,
                        channel_group=group,
                        tile=tile_index,
                        position=pos,
                    )
                    yield ScheduleOp(
                        OpKind.NONCONV_PASS,
                        channel_group=group,
                        tile=tile_index,
                        position=pos,
                    )
                    for kg in range(n_kernel_groups):
                        yield ScheduleOp(
                            OpKind.PWC_PASS,
                            channel_group=group,
                            tile=tile_index,
                            position=pos,
                            kernel_group=kg,
                        )
                tile_index += 1
    for kg in range(n_kernel_groups):
        yield ScheduleOp(OpKind.STORE_OUTPUT, kernel_group=kg)


def schedule_summary(
    spec: DSCLayerSpec, config: ArchConfig = EDEA_CONFIG
) -> dict[str, int]:
    """Operation counts by kind for one layer's schedule."""
    counts: dict[str, int] = {kind.value: 0 for kind in OpKind}
    for op in generate_layer_schedule(spec, config):
        counts[op.kind.value] += 1
    return counts
