"""One observability session spanning a whole CLI run.

:class:`Observability` is the object the simulators thread through
their wiring: it owns the (shared) :class:`TraceRecorder`, hands each
fleet its own :class:`MetricsTimeline`, wraps plane hooks in
:class:`ObserverHooks`, and aggregates the conservation counters the
trace writer embeds in ``otherData``.  An inactive session (no trace,
no metrics) wraps nothing, so the hot paths never see it.
"""

from __future__ import annotations

from ..errors import ConfigError, ReproError
from ..serve.engine import EngineHooks
from .hooks import ObserverHooks
from .metrics import MetricsTimeline
from .trace import TraceRecorder

__all__ = ["Observability"]


class Observability:
    """Session-wide telemetry configuration and state.

    Args:
        trace: Record per-request spans and instant events.
        metrics_every_s: Metrics sampling window in simulated seconds;
            ``None`` disables the timeline.
    """

    def __init__(
        self,
        trace: bool = False,
        metrics_every_s: float | None = None,
    ) -> None:
        if metrics_every_s is not None and metrics_every_s <= 0:
            raise ConfigError(
                "metrics interval must be positive "
                f"({metrics_every_s})"
            )
        self.recorder = TraceRecorder() if trace else None
        self.metrics_every_s = metrics_every_s
        self._timelines: dict[int, MetricsTimeline] = {}
        self._labels: dict[int, str] = {}
        self._hooks: list[ObserverHooks] = []

    @property
    def active(self) -> bool:
        return (
            self.recorder is not None
            or self.metrics_every_s is not None
        )

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def timeline(self, pid: int = 0) -> MetricsTimeline | None:
        if self.metrics_every_s is None:
            return None
        found = self._timelines.get(pid)
        if found is None:
            found = MetricsTimeline(self.metrics_every_s)
            self._timelines[pid] = found
        return found

    def wrap(
        self, inner: EngineHooks | None = None, pid: int = 0
    ) -> ObserverHooks:
        """The hooks an engine should run with under this session."""
        hooks = ObserverHooks(
            inner=inner,
            recorder=self.recorder,
            timeline=self.timeline(pid),
            pid=pid,
        )
        self._hooks.append(hooks)
        return hooks

    def register_fleet(self, pid: int, label: str, fleet) -> None:
        """Name the trace process/threads for one fleet (idempotent —
        rebuilt deterministically by a resume's re-wiring)."""
        self._labels[pid] = label
        if self.recorder is None:
            return
        self.recorder.set_process_name(pid, label)
        for instance in fleet.instances:
            self.recorder.set_thread_name(
                pid, instance.index, f"instance {instance.index}"
            )

    def engine_tick_s(self, tick_s: float | None) -> float | None:
        """The tick the engine needs: the plane's own cadence when it
        has one, else the metrics window (sampling rides ticks), else
        no ticks at all (tracing alone needs none)."""
        if tick_s is not None:
            return tick_s
        return self.metrics_every_s

    def spill(
        self,
        donor_pid: int,
        target_pid: int,
        request,
        hop_ms: float,
    ) -> None:
        """Record one spillover forward (tenancy's exchange barrier)."""
        if self.recorder is None:
            return
        self.recorder.instant(
            "spill",
            cat="spillover",
            ts_s=request.arrival,
            pid=donor_pid,
            args={
                "target": target_pid,
                "model": request.model,
                "hop_ms": hop_ms,
            },
        )

    # ------------------------------------------------------------------
    # Checkpoint compatibility
    # ------------------------------------------------------------------

    def spec(self) -> dict:
        """The configuration a checkpoint stores so a resume can check
        it re-ran with matching telemetry flags."""
        return {
            "trace": self.recorder is not None,
            "metrics_every_s": self.metrics_every_s,
        }

    @staticmethod
    def check_resume(spec: dict | None, obs) -> None:
        """Validate a resume's telemetry flags against the checkpoint.

        A traced checkpoint resumed without ``--trace`` (or vice versa)
        would silently produce a partial trace; fail loudly instead.
        """
        want = spec or {"trace": False, "metrics_every_s": None}
        have = (
            obs.spec()
            if obs is not None
            else {"trace": False, "metrics_every_s": None}
        )
        if want != have:
            def _flags(entry: dict) -> str:
                parts = []
                if entry["trace"]:
                    parts.append("--trace")
                if entry["metrics_every_s"] is not None:
                    parts.append(
                        f"--metrics-every {entry['metrics_every_s']}"
                    )
                return " ".join(parts) or "no telemetry flags"
            raise ReproError(
                "checkpoint was taken with "
                f"{_flags(want)} but this resume passed "
                f"{_flags(have)}: rerun the resume with the "
                "checkpoint's telemetry flags"
            )

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def counts(self) -> dict:
        """Aggregate conservation counters across every wrapped engine
        (one per fleet): spans + sheds must equal offered."""
        offered = sum(hooks.offered for hooks in self._hooks)
        shed = sum(hooks.shed for hooks in self._hooks)
        completed = sum(hooks.completed for hooks in self._hooks)
        return {
            "offered": offered,
            "completed": completed,
            "shed": shed,
        }

    def write_trace(self, path) -> None:
        if self.recorder is None:
            raise ReproError(
                "no trace was recorded (session started without trace)"
            )
        self.recorder.write(path, other_data=self.counts())

    def metrics_payload(self) -> dict | None:
        """The ``--json`` report's ``metrics`` section, or ``None``."""
        if self.metrics_every_s is None:
            return None
        timelines = []
        for pid in sorted(self._timelines):
            entry = {"pid": pid}
            label = self._labels.get(pid)
            if label is not None:
                entry["label"] = label
            entry.update(self._timelines[pid].to_payload())
            timelines.append(entry)
        return {
            "window_s": self.metrics_every_s,
            "timelines": timelines,
        }
