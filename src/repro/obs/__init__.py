"""Engine telemetry: span tracing, rolling metrics, trace export.

One observability layer under both planes: because every serve and
control scenario funnels its events through the single
:class:`~repro.serve.engine.Engine` kernel, instrumenting the engine's
hook points observes all of them at once.  The pieces:

* :class:`TraceRecorder` — per-request lifecycle spans (arrival ->
  admit/shed -> batch launch -> complete) and instant events (governor
  actions, DVFS transitions, spillover forwards) as Chrome trace-event
  JSON, loadable in Perfetto / ``chrome://tracing``.
* :class:`MetricsTimeline` — rolling windowed series (offered/admitted/
  shed rate, queue depth, utilization, batch size, power, forecaster
  level/trend) in bounded ring buffers, embedded in ``--json`` reports.
* :class:`ObserverHooks` — the engine attachment, wrapping a plane's
  own hooks; observation-only, checkpoint-aware.
* :class:`Observability` — the per-run session that wires the above
  and aggregates conservation counters.

Telemetry is strictly opt-in: an inactive session touches nothing, and
the columnar fast paths remain bit-for-bit untouched (tracing selects
the general loop, which runs the same physics).
"""

from .hooks import ObserverHooks
from .metrics import MetricsTimeline
from .session import Observability
from .trace import TraceRecorder, render_trace_summary, summarize_trace

__all__ = [
    "MetricsTimeline",
    "Observability",
    "ObserverHooks",
    "TraceRecorder",
    "render_trace_summary",
    "summarize_trace",
]
