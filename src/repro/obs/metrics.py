"""Rolling windowed time-series metrics sampled on the tick cadence.

:class:`MetricsTimeline` turns cumulative engine/fleet counters into
per-window rates and gauges: offered/admitted/shed rate, per-instance
queue depth and utilization, in-flight batch size, power draw, and the
predictive governor's forecaster level/trend when one is running.
Samples land in a bounded ring buffer (`collections.deque(maxlen=...)`),
so a million-request run holds a fixed-size timeline; the buffer rides
``state_dict``/``load_state_dict`` through checkpoints, so a resumed
run reports the identical series.

Every rate divides by the observed window and every mean by its count
— all guarded, so zero-duration and zero-admitted windows report
honest ``0.0`` rows instead of ``inf``/``nan``.
"""

from __future__ import annotations

from collections import deque

from ..errors import ConfigError

__all__ = ["MetricsTimeline"]


class MetricsTimeline:
    """One fleet's metrics ring buffer, sampled every ``window_s``."""

    def __init__(self, window_s: float, maxlen: int = 4096) -> None:
        if window_s <= 0:
            raise ConfigError(
                f"metrics window must be positive ({window_s})"
            )
        self.window_s = window_s
        self.maxlen = maxlen
        self.samples: deque = deque(maxlen=maxlen)
        self.next_sample_t = window_s
        self.total_samples = 0
        self._last: dict | None = None

    def due(self, now: float) -> bool:
        """Whether ``now`` has reached the next sample boundary (with a
        tolerance for accumulated tick-time float drift)."""
        return now >= self.next_sample_t - 1e-9

    def sample(self, now: float, counters, fleet, governor) -> None:
        """Append one window sample and advance the boundary.

        Args:
            counters: Object with cumulative ``offered``/``shed``
                counts (the wrapping observer hooks).
            fleet: The live fleet (read-only access to instances).
            governor: The control governor, if any — sampled for a
                ``forecaster`` with ``level``/``trend``.
        """
        instances = fleet.instances
        busy = [instance.busy_seconds for instance in instances]
        cumulative = {
            "t": now,
            "offered": counters.offered,
            "shed": counters.shed,
            "served": sum(
                instance.served for instance in instances
            ),
            "batches": sum(
                instance.batches for instance in instances
            ),
            "energy": sum(
                instance.energy_joules for instance in instances
            ),
            "busy": busy,
        }
        last = self._last or {
            "t": 0.0,
            "offered": 0,
            "shed": 0,
            "served": 0,
            "batches": 0,
            "energy": 0.0,
            "busy": [0.0] * len(instances),
        }
        elapsed = cumulative["t"] - last["t"]
        d_offered = cumulative["offered"] - last["offered"]
        d_shed = cumulative["shed"] - last["shed"]
        d_admitted = d_offered - d_shed
        d_served = cumulative["served"] - last["served"]
        d_batches = cumulative["batches"] - last["batches"]
        d_energy = cumulative["energy"] - last["energy"]

        def rate(count: float) -> float:
            return count / elapsed if elapsed > 0 else 0.0

        last_busy = last["busy"]
        utilization = []
        for j, instance in enumerate(instances):
            prev = last_busy[j] if j < len(last_busy) else 0.0
            frac = rate(busy[j] - prev)
            utilization.append(round(min(max(frac, 0.0), 1.0), 6))
        sample = {
            "t": now,
            "offered": d_offered,
            "admitted": d_admitted,
            "shed": d_shed,
            "offered_qps": round(rate(d_offered), 6),
            "admitted_qps": round(rate(d_admitted), 6),
            "shed_qps": round(rate(d_shed), 6),
            "queue_depth": [
                len(instance.queue) for instance in instances
            ],
            "utilization": utilization,
            "active_instances": sum(
                1 for instance in instances if instance.active
            ),
            "batches": d_batches,
            "batch_size_mean": round(
                d_served / d_batches if d_batches > 0 else 0.0, 6
            ),
            "power_w": round(rate(d_energy), 6),
        }
        forecaster = getattr(governor, "forecaster", None)
        if forecaster is not None:
            level = getattr(forecaster, "level", None)
            trend = getattr(forecaster, "trend", None)
            sample["forecast_level"] = (
                round(float(level), 6) if level is not None else None
            )
            sample["forecast_trend"] = (
                round(float(trend), 6) if trend is not None else None
            )
        self.samples.append(sample)
        self.total_samples += 1
        self._last = cumulative
        boundary = self.next_sample_t
        while boundary <= now + 1e-9:
            boundary += self.window_s
        self.next_sample_t = boundary

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "samples": list(self.samples),
            "next_sample_t": self.next_sample_t,
            "total_samples": self.total_samples,
            "last": self._last,
        }

    def load_state_dict(self, state: dict) -> None:
        self.samples = deque(state["samples"], maxlen=self.maxlen)
        self.next_sample_t = state["next_sample_t"]
        self.total_samples = state["total_samples"]
        self._last = state["last"]

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def to_payload(self) -> dict:
        """JSON-ready timeline: window, retained samples, and how many
        older samples the bounded buffer dropped (never silent)."""
        return {
            "window_s": self.window_s,
            "samples": list(self.samples),
            "dropped_samples": self.total_samples - len(self.samples),
        }
