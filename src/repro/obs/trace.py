"""Chrome trace-event recording for engine runs.

:class:`TraceRecorder` accumulates *complete* spans (``ph == "X"``) and
*instant* events (``ph == "i"``) during a simulation and writes them as
the Chrome trace-event JSON object format — a ``traceEvents`` array
plus ``otherData`` — which Perfetto (https://ui.perfetto.dev) and
``chrome://tracing`` load directly.  Simulated seconds map to trace
microseconds, fleets map to trace *processes* (``pid``), instances to
*threads* (``tid``), so the per-instance timeline renders as one lane
per accelerator.

Recording is deterministic: events carry no wall-clock component, the
writer orders them by timestamp with insertion order breaking ties, and
the whole event list round-trips through ``state_dict`` /
``load_state_dict`` — a killed-and-resumed run reproduces the trace
byte for byte.
"""

from __future__ import annotations

import json
import os
import tempfile

from ..errors import ReproError

__all__ = ["TraceRecorder", "summarize_trace", "render_trace_summary"]


def _us(ts_s: float) -> float:
    """Simulated seconds -> trace microseconds (µs), stabilized so the
    JSON rendering stays compact and deterministic."""
    return round(ts_s * 1e6, 3)


class TraceRecorder:
    """Accumulates trace events; one recorder spans a whole run (all
    fleets of a multi-fleet scenario share it)."""

    def __init__(self) -> None:
        self._events: list[dict] = []
        self._batch_seq = 0
        # Display names are wiring-time configuration, rebuilt
        # deterministically on resume — deliberately *not* part of
        # state_dict.
        self._process_names: dict[int, str] = {}
        self._thread_names: dict[tuple[int, int], str] = {}

    def __len__(self) -> int:
        return len(self._events)

    def next_batch_id(self) -> int:
        """A run-unique batch id (monotone, checkpoint-safe)."""
        self._batch_seq += 1
        return self._batch_seq

    def set_process_name(self, pid: int, name: str) -> None:
        self._process_names[pid] = name

    def set_thread_name(self, pid: int, tid: int, name: str) -> None:
        self._thread_names[(pid, tid)] = name

    def complete(
        self,
        name: str,
        cat: str,
        ts_s: float,
        dur_s: float,
        pid: int,
        tid: int,
        args: dict | None = None,
    ) -> None:
        """Record one complete span (``ph == "X"``)."""
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": _us(ts_s),
            "dur": _us(dur_s),
            "pid": pid,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def instant(
        self,
        name: str,
        cat: str,
        ts_s: float,
        pid: int,
        tid: int | None = None,
        args: dict | None = None,
    ) -> None:
        """Record one instant event (``ph == "i"``; thread-scoped when
        ``tid`` is given, process-scoped otherwise)."""
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "ts": _us(ts_s),
            "pid": pid,
        }
        if tid is not None:
            event["tid"] = tid
            event["s"] = "t"
        else:
            event["tid"] = 0
            event["s"] = "p"
        if args:
            event["args"] = args
        self._events.append(event)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "events": list(self._events),
            "batch_seq": self._batch_seq,
        }

    def load_state_dict(self, state: dict) -> None:
        self._events = list(state["events"])
        self._batch_seq = state["batch_seq"]

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def to_payload(self, other_data: dict | None = None) -> dict:
        """The Chrome trace-event JSON object for the recorded run."""
        metadata = []
        for pid, name in sorted(self._process_names.items()):
            metadata.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "args": {"name": name},
                }
            )
        for (pid, tid), name in sorted(self._thread_names.items()):
            metadata.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
        # Stable sort: ties keep insertion order, so the byte layout is
        # a pure function of the simulated schedule.
        events = sorted(self._events, key=lambda event: event["ts"])
        return {
            "traceEvents": metadata + events,
            "displayTimeUnit": "ms",
            "otherData": dict(other_data or {}),
        }

    def write(self, path, other_data: dict | None = None) -> None:
        """Atomically write the trace file (temp file + rename)."""
        payload = self.to_payload(other_data)
        text = json.dumps(payload, separators=(",", ":"))
        directory = os.path.dirname(os.path.abspath(path))
        try:
            fd, tmp_name = tempfile.mkstemp(
                dir=directory, prefix=".trace-", suffix=".json"
            )
        except OSError as exc:
            raise ReproError(
                f"cannot write trace file {path}: {exc}"
            ) from exc
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.write("\n")
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise


def summarize_trace(path) -> dict:
    """Digest a trace-event file into headline numbers.

    Returns a plain dict: event counts by phase and by category, the
    simulated time span covered, per-process span counts, and the
    writer's ``otherData`` (conservation counters) verbatim.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ReproError(f"cannot read trace file {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(
            f"trace file {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ReproError(
            f"trace file {path} is not a trace-event JSON object "
            "(no traceEvents key)"
        )
    events = payload["traceEvents"]
    by_phase: dict[str, int] = {}
    by_cat: dict[str, int] = {}
    by_pid: dict[int, int] = {}
    t_min = None
    t_max = None
    for event in events:
        ph = event.get("ph", "?")
        by_phase[ph] = by_phase.get(ph, 0) + 1
        if ph == "M":
            continue
        cat = event.get("cat", "?")
        by_cat[cat] = by_cat.get(cat, 0) + 1
        pid = event.get("pid", 0)
        by_pid[pid] = by_pid.get(pid, 0) + 1
        ts = float(event.get("ts", 0.0))
        end = ts + float(event.get("dur", 0.0))
        t_min = ts if t_min is None else min(t_min, ts)
        t_max = end if t_max is None else max(t_max, end)
    return {
        "events": sum(
            count for ph, count in by_phase.items() if ph != "M"
        ),
        "by_phase": by_phase,
        "by_category": by_cat,
        "by_process": by_pid,
        "span_us": (
            0.0 if t_min is None else round(t_max - t_min, 3)
        ),
        "other_data": dict(payload.get("otherData", {})),
    }


def render_trace_summary(path, summary: dict) -> str:
    """Human-readable rendering of :func:`summarize_trace`."""
    lines = [f"Trace summary: {path}"]
    span_ms = summary["span_us"] * 1e-3
    lines.append(
        f"  {summary['events']} events over {span_ms:.3f} ms simulated"
    )
    for cat in sorted(summary["by_category"]):
        lines.append(f"  {cat:<12} {summary['by_category'][cat]}")
    if len(summary["by_process"]) > 1:
        procs = ", ".join(
            f"pid {pid}: {count}"
            for pid, count in sorted(summary["by_process"].items())
        )
        lines.append(f"  processes    {procs}")
    other = summary["other_data"]
    if other:
        counts = ", ".join(
            f"{key}={other[key]}" for key in sorted(other)
        )
        lines.append(f"  counters     {counts}")
    return "\n".join(lines)
