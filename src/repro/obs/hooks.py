"""Observer hooks: the telemetry layer's single engine attachment.

:class:`ObserverHooks` wraps a plane's own :class:`EngineHooks` (or
nothing, on the hook-free serve plane) and records spans, instants, and
window samples from the engine's existing decision points — admission,
batch launch, tick, completion.  It overrides every hook, so the engine
binds them all and dispatches the run down the general loop; the fast
paths stay untouched (tracing a run *is* opting into the general loop,
which is bit-for-bit the same physics).

The wrapper is purely observational: admission decisions, governor
actions, and completion accounting are delegated verbatim to the inner
hooks, and its own state (event list, counters, timeline buffers)
rides ``state_dict``/``load_state_dict`` so checkpointed runs resume
with their telemetry intact.
"""

from __future__ import annotations

from ..serve.engine import EngineHooks
from .metrics import MetricsTimeline
from .trace import TraceRecorder

__all__ = ["ObserverHooks"]

_INF = float("inf")


class ObserverHooks(EngineHooks):
    """Telemetry wrapper around a plane's hooks.

    Args:
        inner: The wrapped hooks (e.g. ``ControlHooks``), or ``None``
            on the hook-free serve plane.
        recorder: Shared :class:`TraceRecorder`, or ``None`` when only
            metrics are enabled.
        timeline: This fleet's :class:`MetricsTimeline`, or ``None``
            when only tracing is enabled.
        pid: Trace process id (fleet index; 0 for single-fleet runs).
    """

    def __init__(
        self,
        inner: EngineHooks | None = None,
        recorder: TraceRecorder | None = None,
        timeline: MetricsTimeline | None = None,
        pid: int = 0,
    ) -> None:
        self.inner = inner
        self.recorder = recorder
        self.timeline = timeline
        self.pid = pid
        self.governor = (
            getattr(inner, "governor", None)
            if inner is not None
            else None
        )
        self.offered = 0
        self.shed = 0
        self.completed = 0
        # Bind only the inner hooks that are actually overridden —
        # mirrors the engine's own dispatch-avoidance contract.
        cls = type(inner) if inner is not None else EngineHooks
        self._inner_arrival = (
            inner.on_arrival
            if cls.on_arrival is not EngineHooks.on_arrival
            else None
        )
        self._inner_tick = (
            inner.on_tick
            if cls.on_tick is not EngineHooks.on_tick
            else None
        )
        self._inner_complete = (
            inner.on_complete
            if cls.on_complete is not EngineHooks.on_complete
            else None
        )

    # ------------------------------------------------------------------
    # Engine decision points
    # ------------------------------------------------------------------

    def on_arrival(self, request, instance, now, engine) -> bool:
        self.offered += 1
        admitted = (
            self._inner_arrival(request, instance, now, engine)
            if self._inner_arrival is not None
            else True
        )
        if not admitted:
            self.shed += 1
            if self.recorder is not None:
                self.recorder.instant(
                    "shed",
                    cat="admission",
                    ts_s=now,
                    pid=self.pid,
                    tid=instance.index,
                    args={
                        "model": request.model,
                        "class": request.slo,
                    },
                )
        return admitted

    def on_launch(self, instance, requests, now, finish, engine):
        self.completed += len(requests)
        recorder = self.recorder
        if recorder is None:
            return
        pid = self.pid
        tid = instance.index
        batch_id = recorder.next_batch_id()
        recorder.complete(
            name=f"batch:{requests[0].model}",
            cat="batch",
            ts_s=now,
            dur_s=finish - now,
            pid=pid,
            tid=tid,
            args={"batch": batch_id, "size": len(requests)},
        )
        for request in requests:
            args = {
                "batch": batch_id,
                "class": request.slo,
                "wait_ms": round(
                    (request.start - request.arrival) * 1e3, 6
                ),
            }
            deadline = request.deadline
            if deadline != _INF:
                args["slack_ms"] = round(
                    (deadline - request.finish) * 1e3, 6
                )
            recorder.complete(
                name=request.model,
                cat="request",
                ts_s=request.arrival,
                dur_s=request.finish - request.arrival,
                pid=pid,
                tid=tid,
                args=args,
            )

    def on_tick(self, now, engine) -> int:
        recorder = self.recorder
        governor = self.governor
        before = None
        if recorder is not None and governor is not None:
            before = [
                (instance.active, instance.latency_scale)
                for instance in engine.fleet.instances
            ]
        actions = (
            self._inner_tick(now, engine)
            if self._inner_tick is not None
            else 0
        )
        if before is not None:
            for instance, (was_active, was_scale) in zip(
                engine.fleet.instances, before
            ):
                if instance.active != was_active:
                    recorder.instant(
                        "power-up"
                        if instance.active
                        else "power-down",
                        cat="governor",
                        ts_s=now,
                        pid=self.pid,
                        tid=instance.index,
                    )
                if instance.latency_scale != was_scale:
                    recorder.instant(
                        "dvfs",
                        cat="governor",
                        ts_s=now,
                        pid=self.pid,
                        tid=instance.index,
                        args={
                            "from": was_scale,
                            "to": instance.latency_scale,
                        },
                    )
        timeline = self.timeline
        if timeline is not None and timeline.due(now):
            timeline.sample(now, self, engine.fleet, governor)
        return actions

    def on_complete(self, instance, now, engine):
        if self._inner_complete is not None:
            self._inner_complete(instance, now, engine)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "obs": {
                "offered": self.offered,
                "shed": self.shed,
                "completed": self.completed,
                "recorder": (
                    self.recorder.state_dict()
                    if self.recorder is not None
                    else None
                ),
                "timeline": (
                    self.timeline.state_dict()
                    if self.timeline is not None
                    else None
                ),
            },
            "inner": (
                self.inner.state_dict()
                if self.inner is not None
                else {}
            ),
        }

    def load_state_dict(self, state: dict) -> None:
        obs = state["obs"]
        self.offered = obs["offered"]
        self.shed = obs["shed"]
        self.completed = obs["completed"]
        if self.recorder is not None and obs["recorder"] is not None:
            self.recorder.load_state_dict(obs["recorder"])
        if self.timeline is not None and obs["timeline"] is not None:
            self.timeline.load_state_dict(obs["timeline"])
        if self.inner is not None:
            self.inner.load_state_dict(state["inner"])
